package hist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func mustHist(t testing.TB, bs []Bucket) *Histogram {
	t.Helper()
	h, err := FromBuckets(bs)
	if err != nil {
		t.Fatalf("FromBuckets: %v", err)
	}
	return h
}

func TestFromBucketsValidation(t *testing.T) {
	cases := []struct {
		name string
		bs   []Bucket
	}{
		{"empty", nil},
		{"zero width", []Bucket{{Lo: 1, Hi: 1, Pr: 1}}},
		{"negative width", []Bucket{{Lo: 2, Hi: 1, Pr: 1}}},
		{"negative prob", []Bucket{{Lo: 0, Hi: 1, Pr: -0.5}}},
		{"nan prob", []Bucket{{Lo: 0, Hi: 1, Pr: math.NaN()}}},
		{"overlap", []Bucket{{Lo: 0, Hi: 2, Pr: 0.5}, {Lo: 1, Hi: 3, Pr: 0.5}}},
		{"out of order", []Bucket{{Lo: 5, Hi: 6, Pr: 0.5}, {Lo: 0, Hi: 1, Pr: 0.5}}},
		{"zero mass", []Bucket{{Lo: 0, Hi: 1, Pr: 0}}},
	}
	for _, c := range cases {
		if _, err := FromBuckets(c.bs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFromBucketsNormalizes(t *testing.T) {
	h := mustHist(t, []Bucket{{Lo: 0, Hi: 1, Pr: 2}, {Lo: 1, Hi: 2, Pr: 2}})
	if !almostEq(h.CDF(2), 1, 1e-12) {
		t.Fatalf("total mass = %v, want 1", h.CDF(2))
	}
	if !almostEq(h.Buckets()[0].Pr, 0.5, 1e-12) {
		t.Fatal("probabilities not normalized")
	}
}

func TestHistogramMoments(t *testing.T) {
	// Uniform on [0, 10): mean 5, variance 100/12.
	h := mustHist(t, []Bucket{{Lo: 0, Hi: 10, Pr: 1}})
	if !almostEq(h.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", h.Mean())
	}
	if !almostEq(h.Variance(), 100.0/12, 1e-9) {
		t.Errorf("Variance = %v, want %v", h.Variance(), 100.0/12)
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	h := mustHist(t, []Bucket{
		{Lo: 0, Hi: 10, Pr: 0.25},
		{Lo: 20, Hi: 30, Pr: 0.5},
		{Lo: 30, Hi: 40, Pr: 0.25},
	})
	if got := h.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %v", got)
	}
	if got := h.CDF(100); !almostEq(got, 1, 1e-12) {
		t.Errorf("CDF(100) = %v", got)
	}
	if got := h.CDF(15); !almostEq(got, 0.25, 1e-12) { // in the gap
		t.Errorf("CDF(15) = %v, want 0.25", got)
	}
	if got := h.CDF(25); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("CDF(25) = %v, want 0.5", got)
	}
	f := func(q float64) bool {
		q = math.Mod(math.Abs(q), 1)
		x := h.Quantile(q)
		c := h.CDF(x)
		return c >= q-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := h.Quantile(1); got != 40 {
		t.Errorf("Quantile(1) = %v", got)
	}
}

func TestDensityAndMass(t *testing.T) {
	h := mustHist(t, []Bucket{{Lo: 0, Hi: 10, Pr: 0.5}, {Lo: 10, Hi: 30, Pr: 0.5}})
	if got := h.DensityAt(5); !almostEq(got, 0.05, 1e-12) {
		t.Errorf("density(5) = %v", got)
	}
	if got := h.DensityAt(20); !almostEq(got, 0.025, 1e-12) {
		t.Errorf("density(20) = %v", got)
	}
	if got := h.DensityAt(-3); got != 0 {
		t.Errorf("density(-3) = %v", got)
	}
	if got := h.DensityAt(31); got != 0 {
		t.Errorf("density(31) = %v", got)
	}
	if got := h.MassOn(5, 15); !almostEq(got, 0.25+0.125, 1e-12) {
		t.Errorf("MassOn(5,15) = %v", got)
	}
	if got := h.MassOn(15, 5); got != 0 {
		t.Errorf("MassOn reversed = %v", got)
	}
}

func TestShiftAndClone(t *testing.T) {
	h := mustHist(t, []Bucket{{Lo: 0, Hi: 10, Pr: 1}})
	s := h.Shift(5)
	if s.Min() != 5 || s.Max() != 15 {
		t.Errorf("shift support = [%v,%v)", s.Min(), s.Max())
	}
	c := h.Clone()
	if !almostEq(c.Mean(), h.Mean(), 1e-12) {
		t.Error("clone mean differs")
	}
}

// TestPaperExampleFigure7 asserts the exact worked example of the
// paper's Section 4.2 / Figure 7: a 2×2 joint histogram over
// (ce1, ce2) flattens to the five-bucket marginal cost distribution
// with probabilities 0.1000, 0.1625, 0.2292, 0.3833, 0.1250.
func TestPaperExampleFigure7(t *testing.T) {
	m, err := NewMulti([][]float64{
		{20, 30, 50}, // ce1 buckets [20,30), [30,50)
		{20, 40, 60}, // ce2 buckets [20,40), [40,60)
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetCell([]int{0, 0}, 0.30) // ce1∈[20,30), ce2∈[20,40)
	m.SetCell([]int{1, 0}, 0.25) // ce1∈[30,50), ce2∈[20,40)
	m.SetCell([]int{0, 1}, 0.20) // ce1∈[20,30), ce2∈[40,60)
	m.SetCell([]int{1, 1}, 0.25) // ce1∈[30,50), ce2∈[40,60)

	h, err := m.SumHistogram(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Bucket{
		{Lo: 40, Hi: 50, Pr: 0.1000},
		{Lo: 50, Hi: 60, Pr: 0.1625},
		{Lo: 60, Hi: 70, Pr: 1.0/3*0.30/3.0*0 + 0.2292}, // literal below
		{Lo: 70, Hi: 90, Pr: 0.3833},
		{Lo: 90, Hi: 110, Pr: 0.1250},
	}
	// The paper rounds to 4 decimals; recompute exact values:
	// [60,70): 0.3/3 + 0.25/4 + 0.2/3 = 0.1 + 0.0625 + 0.0666..
	want[2].Pr = 0.30/3 + 0.25/4 + 0.20/3
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d (%v), want %d", len(got), h, len(want))
	}
	for i := range want {
		if !almostEq(got[i].Lo, want[i].Lo, 1e-9) || !almostEq(got[i].Hi, want[i].Hi, 1e-9) {
			t.Errorf("bucket %d range [%v,%v), want [%v,%v)", i, got[i].Lo, got[i].Hi, want[i].Lo, want[i].Hi)
		}
		if !almostEq(got[i].Pr, want[i].Pr, 5e-4) {
			t.Errorf("bucket %d pr = %v, want %v", i, got[i].Pr, want[i].Pr)
		}
	}
	if !almostEq(h.CDF(1e9), 1, 1e-9) {
		t.Error("flattened mass must be 1")
	}
}

func TestRearrangedMatchesPaperIntermediate(t *testing.T) {
	// The intermediate table of Figure 7: four interval masses.
	h, err := Rearranged([]Bucket{
		{Lo: 40, Hi: 70, Pr: 0.30},
		{Lo: 50, Hi: 90, Pr: 0.25},
		{Lo: 60, Hi: 90, Pr: 0.20},
		{Lo: 70, Hi: 110, Pr: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Worked values from the paper's prose: [40,50)=0.1, then the
	// final table.
	if got := h.MassOn(40, 50); !almostEq(got, 0.1, 1e-9) {
		t.Errorf("[40,50) = %v, want 0.1", got)
	}
	if got := h.MassOn(70, 90); !almostEq(got, 0.3833, 5e-4) {
		t.Errorf("[70,90) = %v, want 0.3833", got)
	}
	if got := h.MassOn(90, 110); !almostEq(got, 0.125, 1e-9) {
		t.Errorf("[90,110) = %v, want 0.125", got)
	}
}

func TestConvolvePointMasses(t *testing.T) {
	a := Point(10, 1)
	b := Point(20, 1)
	c := Convolve(a, b)
	if c.Min() != 30 || c.Max() != 32 {
		t.Fatalf("support = [%v,%v), want [30,32)", c.Min(), c.Max())
	}
	if !almostEq(c.Mean(), 31, 1e-9) {
		t.Fatalf("mean = %v, want 31", c.Mean())
	}
}

func TestConvolveMeanAdds(t *testing.T) {
	// Property: E[X+Y] = E[X] + E[Y] regardless of bucket layouts.
	rnd := rand.New(rand.NewSource(7))
	randHist := func() *Histogram {
		n := 1 + rnd.Intn(4)
		bs := make([]Bucket, 0, n)
		lo := rnd.Float64() * 10
		for i := 0; i < n; i++ {
			w := 1 + rnd.Float64()*20
			bs = append(bs, Bucket{Lo: lo, Hi: lo + w, Pr: rnd.Float64() + 0.1})
			lo += w + rnd.Float64()*5
		}
		return MustFromBuckets(bs)
	}
	for i := 0; i < 100; i++ {
		x, y := randHist(), randHist()
		c := Convolve(x, y)
		if !almostEq(c.Mean(), x.Mean()+y.Mean(), 1e-6) {
			t.Fatalf("mean: %v + %v != %v", x.Mean(), y.Mean(), c.Mean())
		}
		if !almostEq(c.CDF(math.Inf(1)), 1, 1e-9) {
			t.Fatal("convolution mass != 1")
		}
		if c.Min() < x.Min()+y.Min()-1e-9 || c.Max() > x.Max()+y.Max()+1e-9 {
			t.Fatal("convolution support escapes sum of supports")
		}
	}
}

func TestConvolveAll(t *testing.T) {
	hs := []*Histogram{Point(1, 1), Point(2, 1), Point(3, 1)}
	c := ConvolveAll(hs)
	if !almostEq(c.Mean(), 1.5+2.5+3.5, 1e-9) {
		t.Fatalf("mean = %v", c.Mean())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ConvolveAll(nil) should panic")
		}
	}()
	ConvolveAll(nil)
}

func TestCompress(t *testing.T) {
	bs := make([]Bucket, 20)
	for i := range bs {
		bs[i] = Bucket{Lo: float64(i), Hi: float64(i + 1), Pr: 1.0 / 20}
	}
	h := mustHist(t, bs)
	c := h.Compress(5)
	if c.NumBuckets() > 5 {
		t.Fatalf("compressed to %d buckets, want ≤ 5", c.NumBuckets())
	}
	if !almostEq(c.Mean(), h.Mean(), 1e-9) {
		t.Fatalf("compression moved mean: %v vs %v", c.Mean(), h.Mean())
	}
	if !almostEq(c.CDF(math.Inf(1)), 1, 1e-12) {
		t.Fatal("compression lost mass")
	}
	// No-op cases.
	if h.Compress(100) != h {
		t.Error("compress with large cap should be identity")
	}
	if h.Compress(0) != h {
		t.Error("compress with non-positive cap should be identity")
	}
}

func TestRearrangePreservesMassAndMean(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rnd.Intn(8)
		ivals := make([]Bucket, n)
		var mass, mean float64
		for i := range ivals {
			lo := rnd.Float64() * 50
			w := 1 + rnd.Float64()*30
			pr := rnd.Float64() + 0.05
			ivals[i] = Bucket{Lo: lo, Hi: lo + w, Pr: pr}
			mass += pr
			mean += pr * (lo + w/2)
		}
		h, err := Rearranged(ivals)
		if err != nil {
			t.Fatal(err)
		}
		// Rearranged normalizes; compare normalized mean.
		if !almostEq(h.Mean(), mean/mass, 1e-6) {
			t.Fatalf("trial %d: mean %v, want %v", trial, h.Mean(), mean/mass)
		}
		// Buckets disjoint and ordered by construction of FromBuckets.
	}
}

func TestSquaredErrorZeroForExactHistogram(t *testing.T) {
	// A histogram with one bucket per distinct value reproduces the raw
	// distribution exactly, so SE must be ~0.
	samples := []float64{10, 10, 20, 30, 30, 30}
	raw, err := NewRaw(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := VOptimal(raw, raw.NumDistinct())
	if err != nil {
		t.Fatal(err)
	}
	if se := h.SquaredError(raw); se > 1e-18 {
		t.Fatalf("SE = %v, want 0", se)
	}
}

func TestPointHistogram(t *testing.T) {
	h := Point(42, 1)
	if h.Min() != 42 || h.Max() != 43 {
		t.Fatalf("support [%v,%v)", h.Min(), h.Max())
	}
	if !almostEq(h.CDF(43), 1, 1e-12) {
		t.Fatal("point mass != 1")
	}
}

func TestHistogramString(t *testing.T) {
	h := mustHist(t, []Bucket{{Lo: 0, Hi: 1, Pr: 1}})
	if h.String() == "" {
		t.Fatal("empty string")
	}
}

func TestProbWithinAlias(t *testing.T) {
	h := mustHist(t, []Bucket{{Lo: 0, Hi: 10, Pr: 1}})
	if h.ProbWithin(5) != h.CDF(5) {
		t.Fatal("ProbWithin must equal CDF")
	}
}

func TestSampleWithinSupport(t *testing.T) {
	h := mustHist(t, []Bucket{{Lo: 5, Hi: 10, Pr: 0.4}, {Lo: 20, Hi: 21, Pr: 0.6}})
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := h.Sample(rnd.Float64())
		if v < 5 || v > 21 {
			t.Fatalf("sample %v outside support", v)
		}
		if v >= 10 && v < 20 {
			t.Fatalf("sample %v in support gap", v)
		}
	}
}

func TestDominates(t *testing.T) {
	fast := mustHist(t, []Bucket{{Lo: 10, Hi: 20, Pr: 1}})
	slow := mustHist(t, []Bucket{{Lo: 30, Hi: 40, Pr: 1}})
	if !fast.Dominates(slow) {
		t.Fatal("strictly faster histogram must dominate")
	}
	if slow.Dominates(fast) {
		t.Fatal("slower histogram must not dominate")
	}
	// Self-dominance (weak dominance) holds.
	if !fast.Dominates(fast) {
		t.Fatal("histogram must dominate itself")
	}
	// Crossing CDFs: neither dominates.
	tight := mustHist(t, []Bucket{{Lo: 20, Hi: 25, Pr: 1}})
	wide := mustHist(t, []Bucket{{Lo: 10, Hi: 40, Pr: 1}})
	if tight.Dominates(wide) || wide.Dominates(tight) {
		t.Fatal("crossing CDFs must be incomparable")
	}
}
