package api

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	pathcost "repro"
	"repro/internal/hist"
)

// --- JSON shapes -----------------------------------------------------
//
// Field order and tags are load-bearing: encoding/json emits fields in
// declaration order, and the sharded serving tier promises responses
// byte-identical to a single process. Do not reorder.

// Error is the uniform error body.
type Error struct {
	Error string `json:"error"`
}

// Bucket is one histogram bucket: P(cost ∈ [Lo, Hi)) = Pr.
type Bucket struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	Pr float64 `json:"pr"`
}

// DistributionRequest asks for the cost distribution of a path.
type DistributionRequest struct {
	// Path is the sequence of adjacent edge IDs to evaluate.
	Path []int64 `json:"path"`
	// Depart is the departure time in seconds (time-of-day or absolute).
	Depart float64 `json:"depart"`
	// Method is one of OD (default), RD, HP, LB.
	Method string `json:"method,omitempty"`
	// Budget, when > 0, adds prob_within = P(cost ≤ Budget).
	Budget float64 `json:"budget,omitempty"`
}

// DistributionResponse is the answer to a distribution query.
type DistributionResponse struct {
	Method      string   `json:"method"`
	Interval    int      `json:"interval"` // departure α-interval index
	MeanS       float64  `json:"mean_s"`
	P10S        float64  `json:"p10_s"`
	P50S        float64  `json:"p50_s"`
	P90S        float64  `json:"p90_s"`
	ProbWithin  *float64 `json:"prob_within,omitempty"`
	Buckets     []Bucket `json:"buckets"`
	DecompPaths int      `json:"decomp_paths"`
	MaxRank     int      `json:"max_rank"`
	// EvalUS is the cost of the underlying evaluation that produced
	// this answer — for cache hits and stampede followers that is a
	// prior request's computation, not work done by this request.
	EvalUS int64 `json:"eval_us"`
}

// RouteRequest asks for the most reliable route within a budget.
type RouteRequest struct {
	Source int64   `json:"source"`
	Dest   int64   `json:"dest"`
	Depart float64 `json:"depart"`
	Budget float64 `json:"budget"`
	Method string  `json:"method,omitempty"`
}

// RouteResponse is the answer to a routing query.
type RouteResponse struct {
	Path     []int64 `json:"path"`
	Prob     float64 `json:"prob"`
	MeanS    float64 `json:"mean_s"`
	Explored int     `json:"explored"`
	Pruned   int     `json:"pruned"`
	EvalUS   int64   `json:"eval_us"`
}

// TopKRequest asks for the k most reliable routes within a budget.
type TopKRequest struct {
	RouteRequest
	K int `json:"k"`
}

// TopKEntry is one route of a top-k answer.
type TopKEntry struct {
	Path  []int64 `json:"path"`
	Prob  float64 `json:"prob"`
	MeanS float64 `json:"mean_s"`
}

// TopKResponse is the answer to a top-k query.
type TopKResponse struct {
	Routes []TopKEntry `json:"routes"`
}

// BatchQuery is one entry of a /v1/batch request: a flattened union
// of the distribution, route, topk and state request shapes,
// discriminated by Kind ("distribution" — the default — "route",
// "topk" or "state").
type BatchQuery struct {
	Kind   string  `json:"kind,omitempty"`
	Path   []int64 `json:"path,omitempty"`
	Source int64   `json:"source,omitempty"`
	Dest   int64   `json:"dest,omitempty"`
	Depart float64 `json:"depart"`
	Budget float64 `json:"budget,omitempty"`
	Method string  `json:"method,omitempty"`
	K      int     `json:"k,omitempty"`
	// UILo, UIHi and State apply to kind "state" only: the departure
	// interval at the segment's first edge and the relayed partial
	// state (empty for a first segment).
	UILo  float64 `json:"ui_lo,omitempty"`
	UIHi  float64 `json:"ui_hi,omitempty"`
	State string  `json:"state,omitempty"`
}

// BatchRequest is a /v1/batch body.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
}

// BatchResult is one entry's outcome. Status carries the status code
// the query would have received as a standalone request (200, 400,
// 422, 500); exactly one of the payload fields is set on 200.
type BatchResult struct {
	Kind         string                `json:"kind"`
	Status       int                   `json:"status"`
	Error        string                `json:"error,omitempty"`
	Distribution *DistributionResponse `json:"distribution,omitempty"`
	Route        *RouteResponse        `json:"route,omitempty"`
	TopK         *TopKResponse         `json:"topk,omitempty"`
	State        *StateResult          `json:"state,omitempty"`
}

// BatchResponse is a /v1/batch answer.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// StateRequest asks POST /v1/state to evaluate one segment of a
// partitioned query and return the resulting partial state. A first
// segment omits State and sets UILo = UIHi = Depart; a continuation
// carries the previous segment's accumulator-only state and interval.
type StateRequest struct {
	Path   []int64 `json:"path"`
	Depart float64 `json:"depart"`
	Method string  `json:"method,omitempty"`
	UILo   float64 `json:"ui_lo"`
	UIHi   float64 `json:"ui_hi"`
	State  string  `json:"state,omitempty"`
}

// StateResult is a segment evaluation's outcome: the encoded
// accumulator-only state after the segment's last factor, the
// departure interval past its last edge, and the segment's
// decomposition shape (Factors sum and MaxRank max across segments
// reproduce the whole-path decomposition's cardinality and max rank).
type StateResult struct {
	State   string  `json:"state"`
	UILo    float64 `json:"ui_lo"`
	UIHi    float64 `json:"ui_hi"`
	Factors int     `json:"factors"`
	MaxRank int     `json:"max_rank"`
}

// --- response builders -----------------------------------------------

// Buckets converts histogram buckets to their wire shape.
func Buckets(bs []hist.Bucket) []Bucket {
	out := make([]Bucket, len(bs))
	for i, b := range bs {
		out[i] = Bucket{Lo: b.Lo, Hi: b.Hi, Pr: b.Pr}
	}
	return out
}

// DistributionPayload shapes one evaluated cost distribution. Both the
// single-process server and the sharded coordinator assemble their
// distribution bodies here, from the same scalar inputs, so a
// coordinator that reproduces the single-process histogram bit-exactly
// also reproduces the response bytes exactly.
func DistributionPayload(method string, interval int, dist *hist.Histogram, budget float64, decompPaths, maxRank int, evalUS int64) *DistributionResponse {
	resp := &DistributionResponse{
		Method:      method,
		Interval:    interval,
		MeanS:       dist.Mean(),
		P10S:        dist.Quantile(0.1),
		P50S:        dist.Quantile(0.5),
		P90S:        dist.Quantile(0.9),
		Buckets:     Buckets(dist.Buckets()),
		DecompPaths: decompPaths,
		MaxRank:     maxRank,
		EvalUS:      evalUS,
	}
	if budget > 0 {
		pw := dist.ProbWithin(budget)
		resp.ProbWithin = &pw
	}
	return resp
}

// EdgeIDs converts a path to its wire shape.
func EdgeIDs(p pathcost.Path) []int64 {
	out := make([]int64, len(p))
	for i, e := range p {
		out[i] = int64(e)
	}
	return out
}

// --- validation helpers ----------------------------------------------

// ParseMethod validates the method name; empty selects OD.
func ParseMethod(name string) (pathcost.Method, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "", "OD":
		return pathcost.OD, nil
	case "RD":
		return pathcost.RD, nil
	case "HP":
		return pathcost.HP, nil
	case "LB":
		return pathcost.LB, nil
	}
	return "", fmt.Errorf("unknown method %q (want OD, RD, HP or LB)", name)
}

// ParsePath validates the edge sequence against the served graph.
func ParsePath(g *pathcost.Graph, ids []int64, maxEdges int) (pathcost.Path, error) {
	if len(ids) == 0 {
		return nil, errors.New("path must contain at least one edge id")
	}
	if len(ids) > maxEdges {
		return nil, fmt.Errorf("path has %d edges, cap is %d", len(ids), maxEdges)
	}
	p := make(pathcost.Path, len(ids))
	for i, id := range ids {
		if id < 0 || int(id) >= g.NumEdges() {
			return nil, fmt.Errorf("edge id %d out of range [0, %d)", id, g.NumEdges())
		}
		p[i] = pathcost.EdgeID(id)
	}
	if !g.ValidPath(p) {
		return nil, errors.New("edge sequence is not a connected simple path in the served network")
	}
	return p, nil
}

// CheckVertex validates a vertex id against the served graph.
func CheckVertex(g *pathcost.Graph, name string, v int64) error {
	if v < 0 || int(v) >= g.NumVertices() {
		return fmt.Errorf("%s vertex %d out of range [0, %d)", name, v, g.NumVertices())
	}
	return nil
}

// CheckDepart validates a departure time.
func CheckDepart(depart float64) error {
	if depart < 0 {
		return fmt.Errorf("depart %v must be ≥ 0 seconds", depart)
	}
	return nil
}

// CheckRoute shares the routing-request checks between /v1/route,
// /v1/topk and their batch twins; a non-nil error means a 400 with the
// error's message.
func CheckRoute(g *pathcost.Graph, req *RouteRequest) (pathcost.Method, error) {
	m, err := ParseMethod(req.Method)
	if err == nil {
		err = CheckDepart(req.Depart)
	}
	if err == nil {
		err = CheckVertex(g, "source", req.Source)
	}
	if err == nil {
		err = CheckVertex(g, "dest", req.Dest)
	}
	if err == nil && req.Source == req.Dest {
		err = errors.New("source and dest must differ")
	}
	if err == nil && req.Budget <= 0 {
		err = fmt.Errorf("budget %v must be > 0 seconds", req.Budget)
	}
	if err != nil {
		return "", err
	}
	return m, nil
}

// --- deadline budgets --------------------------------------------------

// BudgetHeader carries a request's remaining deadline budget in whole
// milliseconds. The coordinator stamps it on every shard leg with the
// budget left on its own clock, so a deadline set at the front door
// bounds work end to end: coordinator wait, shard evaluation, and any
// hedged retry all draw from the same allowance. Clients may set it
// directly on /v1/batch and /v1/state (or any query endpoint) to cap
// one request tighter than the server's -default-timeout.
const BudgetHeader = "X-Budget-Ms"

// ParseBudget reads a BudgetHeader value. It returns ok = false for an
// absent (empty) header, and an error for anything that is not a
// positive integer — a garbled budget must be rejected loudly, not
// silently treated as unlimited.
func ParseBudget(val string) (time.Duration, bool, error) {
	if val == "" {
		return 0, false, nil
	}
	ms, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
	if err != nil || ms <= 0 {
		return 0, false, fmt.Errorf("invalid %s %q: want a positive integer millisecond count", BudgetHeader, val)
	}
	return time.Duration(ms) * time.Millisecond, true, nil
}

// FormatBudget renders a remaining budget for BudgetHeader, rounding
// up so a sub-millisecond remainder forwards as 1 rather than an
// instantly-expired 0.
func FormatBudget(d time.Duration) string {
	ms := (d + time.Millisecond - 1) / time.Millisecond
	if ms < 1 {
		ms = 1
	}
	return strconv.FormatInt(int64(ms), 10)
}
