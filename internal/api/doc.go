// Package api defines the JSON wire types and request-validation
// helpers of the pathcost HTTP API, shared by the single-process
// server (internal/server) and the sharded-serving coordinator
// (internal/shard). Keeping one set of shapes is what lets the
// coordinator emit responses byte-identical to a single process: both
// tiers marshal the same structs with the same tags, and the
// distribution payload is assembled by one function.
package api
