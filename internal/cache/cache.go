package cache

import (
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used when NewLRU is given no
// explicit sharding; 16 keeps per-shard contention negligible for
// typical serving parallelism without fragmenting tiny capacities.
const DefaultShards = 16

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 // Get calls answered from the cache
	Misses    uint64 // Get calls that fell through
	Evictions uint64 // entries displaced by capacity pressure
	Entries   int    // entries currently resident
	Capacity  int    // maximum resident entries
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// LRU is a sharded, size-bounded, concurrency-safe LRU cache from
// string keys to values of type V. The zero value is not usable; call
// NewLRU.
type LRU[V any] struct {
	shards []shard[V]
	mask   uint32
	cap    int

	hits, misses, evictions atomic.Uint64
}

// shard is one lock domain: a hash bucket of the key space with its
// own recency list.
type shard[V any] struct {
	mu    sync.Mutex
	cap   int
	items map[string]*entry[V]
	// Most-recently-used first; nil head means empty.
	head, tail *entry[V]
}

type entry[V any] struct {
	key        string
	val        V
	prev, next *entry[V]
}

// NewLRU builds a cache holding at most capacity entries, spread over
// DefaultShards shards (fewer when capacity is small, so every shard
// can hold at least one entry). capacity < 1 is treated as 1.
func NewLRU[V any](capacity int) *LRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	shards := DefaultShards
	for shards > 1 && capacity/shards < 1 {
		shards /= 2
	}
	c := &LRU[V]{
		shards: make([]shard[V], shards),
		mask:   uint32(shards - 1),
		cap:    capacity,
	}
	for i := range c.shards {
		sc := capacity / shards
		if i < capacity%shards {
			sc++
		}
		c.shards[i] = shard[V]{cap: sc, items: make(map[string]*entry[V], sc)}
	}
	return c
}

// fnv1a hashes the key for shard selection (FNV-1a, 32-bit).
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *LRU[V]) shardFor(key string) *shard[V] {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the cached value for key, marking it most recently used.
func (c *LRU[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	s.moveToFront(e)
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Peek returns the cached value for key without updating recency or
// the hit/miss counters. It backs internal re-checks — e.g. a
// singleflight leader's second look after winning the key — where the
// caller already recorded the logical lookup via Get and counting
// again would double-book it.
func (c *LRU[V]) Peek(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes key, evicting the shard's least recently
// used entry when the shard is full.
func (c *LRU[V]) Put(key string, val V) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.items[key]; ok {
		e.val = val
		s.moveToFront(e)
		s.mu.Unlock()
		return
	}
	if len(s.items) >= s.cap {
		victim := s.tail
		s.unlink(victim)
		delete(s.items, victim.key)
		c.evictions.Add(1)
	}
	e := &entry[V]{key: key, val: val}
	s.items[key] = e
	s.pushFront(e)
	s.mu.Unlock()
}

// Len returns the number of resident entries.
func (c *LRU[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry; counters are preserved.
func (c *LRU[V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[string]*entry[V], s.cap)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// Stats snapshots the effectiveness counters. The snapshot is not
// atomic across shards, which is fine for monitoring.
func (c *LRU[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  c.cap,
	}
}

// Intrusive doubly-linked recency list; callers hold s.mu.

func (s *shard[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[V]) moveToFront(e *entry[V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
