package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := NewLRU[int](8)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 10) // refresh replaces the value
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("refresh lost: got %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 || st.Capacity != 8 {
		t.Fatalf("stats %+v", st)
	}
}

// sameShardKeys crafts n distinct keys hashing into c's shard 0, so
// LRU ordering is observable regardless of shard count.
func sameShardKeys(c *LRU[int], n int) []string {
	var keys []string
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if fnv1a(k)&c.mask == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestEvictionOrder(t *testing.T) {
	c := NewLRU[int](48) // 16 shards × 3 entries each
	keys := sameShardKeys(c, 4)
	shardCap := c.shards[0].cap
	if shardCap != 3 {
		t.Fatalf("expected shard capacity 3, got %d", shardCap)
	}
	c.Put(keys[0], 0)
	c.Put(keys[1], 1)
	c.Put(keys[2], 2)
	c.Get(keys[0]) // promote keys[0]; keys[1] is now LRU
	c.Put(keys[3], 3)
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, k := range []string{keys[0], keys[2], keys[3]} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("recently used key %q evicted", k)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestCapacityBound(t *testing.T) {
	const capacity = 100
	c := NewLRU[int](capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", n, capacity)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 10× overload")
	}
}

func TestTinyCapacity(t *testing.T) {
	for _, capacity := range []int{-1, 0, 1, 2, 3} {
		c := NewLRU[int](capacity)
		for i := 0; i < 10; i++ {
			c.Put(fmt.Sprintf("k%d", i), i)
		}
		want := capacity
		if want < 1 {
			want = 1
		}
		if n := c.Len(); n > want {
			t.Fatalf("capacity %d: %d entries resident", capacity, n)
		}
	}
}

func TestPurge(t *testing.T) {
	c := NewLRU[int](10)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("purge left entries")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("purged entry still resident")
	}
	// Cache must remain usable after Purge.
	c.Put("c", 3)
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatal("cache unusable after purge")
	}
}

func TestHitRate(t *testing.T) {
	var zero Stats
	if zero.HitRate() != 0 {
		t.Fatal("zero stats should have 0 hit rate")
	}
	c := NewLRU[string](4)
	c.Put("x", "v")
	c.Get("x")
	c.Get("x")
	c.Get("y")
	if hr := c.Stats().HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate %v, want 2/3", hr)
	}
}

// TestConcurrent hammers the cache from many goroutines; run with
// -race to verify the sharded locking.
func TestConcurrent(t *testing.T) {
	c := NewLRU[int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("key-%d", (w*31+i)%128)
				if i%3 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 64 {
		t.Fatalf("capacity exceeded under concurrency: %d", n)
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
