// Singleflight companion to the LRU: a cache bounds *memory*, but a
// cache alone does not bound *work*. When N concurrent requests miss
// on the same key — the classic stampede on a popular path right
// after start-up, eviction, or a model swap — all N run the same
// expensive distribution estimation. Flight collapses them: the first
// caller computes, the rest wait and share the one result.
package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrLeaderPanic is wrapped into the error followers receive when the
// leader's fn panicked instead of returning; the panic itself still
// propagates on the leader's goroutine.
var ErrLeaderPanic = errors.New("cache: in-flight computation panicked")

// Flight suppresses duplicate concurrent computations per string key.
// The zero value is ready to use. A Flight must not be copied after
// first use.
//
// Unlike the LRU it retains nothing: a key exists only while a
// computation for it is in flight, so sequential calls re-run fn.
// Compose it with an LRU (check the cache, then Do, then fill the
// cache inside fn) to get bounded memory and bounded work.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

// call is one in-flight computation and its parked followers.
type call[V any] struct {
	done    chan struct{}
	waiters int
	val     V
	err     error
}

// Do returns the result of fn for key, running fn at most once among
// concurrent callers: the first caller (the leader) executes fn while
// the rest block and then share the leader's value and error. shared
// is true for followers and false for the leader. Once the leader
// returns, the key is forgotten; a later Do with the same key runs fn
// again.
//
// fn runs on the leader's goroutine without any Flight lock held, so
// it may itself use the Flight with other keys. If fn panics, the
// panic propagates on the leader's goroutine while the key is
// released and every follower receives the zero V and an error
// wrapping ErrLeaderPanic — never a nil error with a zero value.
func (f *Flight[V]) Do(key string, fn func() (V, error)) (val V, shared bool, err error) {
	return f.DoCtx(context.Background(), key, fn)
}

// DoCtx is Do with caller cancellation while parked: a follower whose
// ctx ends stops waiting and returns ctx's error immediately (shared
// is true — the computation belonged to someone else and continues
// unaffected, still filling any cache the leader's fn writes to). The
// leader itself is committed once fn starts and ignores ctx; cancel
// inside fn if leader abandonment is needed.
func (f *Flight[V]) DoCtx(ctx context.Context, key string, fn func() (V, error)) (val V, shared bool, err error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*call[V])
	}
	if c, ok := f.calls[key]; ok {
		c.waiters++
		f.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			f.mu.Lock()
			if f.calls[key] == c {
				c.waiters--
			}
			f.mu.Unlock()
			var zero V
			return zero, true, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			c.err = fmt.Errorf("%w (key %q)", ErrLeaderPanic, key)
		}
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	completed = true
	return c.val, false, c.err
}

// Waiting reports how many callers are currently blocked waiting for
// the in-flight computation of key (excluding the leader); it is 0
// when no computation for key is in flight. Intended for tests and
// load introspection.
func (f *Flight[V]) Waiting(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok {
		return c.waiters
	}
	return 0
}

// Pending reports how many keys have an in-flight computation.
func (f *Flight[V]) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
