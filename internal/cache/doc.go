// Package cache provides the shared caching primitives of the serving
// path: a sharded, size-bounded LRU map and a singleflight layer.
//
// Training a hybrid graph is the expensive offline step, but at
// serving scale the per-query cost — decomposition search plus
// joint-distribution chain evaluation — still dominates, and real
// query workloads are heavily skewed toward a small set of popular
// (path, departure-interval) pairs with long shared prefixes. The LRU
// turns that skew into throughput while keeping memory use fixed; it
// backs both the α-interval query cache (pathcost.EnableQueryCache)
// and the exact prefix-keyed convolution memo (core.ConvMemo,
// pathcost.EnableConvMemo).
//
// The cache is sharded by key hash: each shard has its own lock and
// its own LRU list, so concurrent readers on different shards never
// contend. Hit/miss/eviction counters are kept with atomics and
// exposed via Stats. The singleflight layer (Flight) collapses
// concurrent misses on one key into a single computation.
package cache
