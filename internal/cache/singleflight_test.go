package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes. It marks
// the test failed on timeout but returns (Errorf, not Fatalf) so it
// is safe from helper goroutines: callers must keep unblocking their
// peers on the failure path to avoid hanging the test binary.
func waitFor(t *testing.T, cond func() bool, msg string) bool {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Errorf("timeout waiting for %s", msg)
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// TestFlightDeduplicates is the stampede test: K concurrent callers on
// one key must trigger exactly one execution of fn. It is
// deterministic — the leader blocks inside fn until every follower is
// parked on the call (observed via Waiting), so no follower can
// arrive late and become a second leader.
func TestFlightDeduplicates(t *testing.T) {
	const followers = 31
	var f Flight[int]
	var execs atomic.Int32
	release := make(chan struct{})
	leaderIn := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]int, followers+1)
	sharedCount := atomic.Int32{}
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := f.Do("k", func() (int, error) {
				execs.Add(1)
				close(leaderIn)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}

	<-leaderIn // exactly one goroutine entered fn
	waitFor(t, func() bool { return f.Waiting("k") == followers },
		"all followers parked on the in-flight call")
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want exactly 1", n)
	}
	if n := sharedCount.Load(); n != followers {
		t.Fatalf("shared=true for %d callers, want %d", n, followers)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d, want 42", i, v)
		}
	}
	if f.Pending() != 0 {
		t.Fatalf("Pending = %d after completion, want 0", f.Pending())
	}
}

// Sequential calls must re-run fn: Flight memoizes nothing.
func TestFlightSequentialReruns(t *testing.T) {
	var f Flight[string]
	execs := 0
	for i := 0; i < 3; i++ {
		v, shared, err := f.Do("k", func() (string, error) {
			execs++
			return "v", nil
		})
		if err != nil || shared || v != "v" {
			t.Fatalf("call %d: v=%q shared=%v err=%v", i, v, shared, err)
		}
	}
	if execs != 3 {
		t.Fatalf("fn executed %d times across sequential calls, want 3", execs)
	}
}

// The leader's error must reach every follower.
func TestFlightErrorShared(t *testing.T) {
	var f Flight[int]
	wantErr := errors.New("boom")
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var followerErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-leaderIn
		_, shared, err := f.Do("k", func() (int, error) {
			t.Error("follower executed fn")
			return 0, nil
		})
		if !shared {
			t.Error("follower was not shared")
		}
		followerErr = err
	}()

	go func() {
		<-leaderIn
		waitFor(t, func() bool { return f.Waiting("k") == 1 }, "follower parked")
		close(release)
	}()

	_, _, err := f.Do("k", func() (int, error) {
		close(leaderIn)
		<-release
		return 0, wantErr
	})
	<-done
	if !errors.Is(err, wantErr) || !errors.Is(followerErr, wantErr) {
		t.Fatalf("leader err = %v, follower err = %v, want %v", err, followerErr, wantErr)
	}
}

// A panicking leader must propagate its panic, release the key, and
// hand followers an ErrLeaderPanic — never a zero value with nil error.
func TestFlightLeaderPanic(t *testing.T) {
	var f Flight[int]
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	followerDone := make(chan struct{})
	var followerVal int
	var followerShared bool
	var followerErr error
	go func() {
		defer close(followerDone)
		<-leaderIn
		followerVal, followerShared, followerErr = f.Do("k", func() (int, error) {
			t.Error("follower executed fn")
			return 0, nil
		})
	}()
	go func() {
		<-leaderIn
		waitFor(t, func() bool { return f.Waiting("k") == 1 }, "follower parked")
		close(release)
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		f.Do("k", func() (int, error) {
			close(leaderIn)
			<-release
			panic("boom")
		})
	}()
	<-followerDone

	if followerVal != 0 || !followerShared || !errors.Is(followerErr, ErrLeaderPanic) {
		t.Fatalf("follower got (%d, %v, %v), want (0, true, ErrLeaderPanic)", followerVal, followerShared, followerErr)
	}
	if f.Pending() != 0 {
		t.Fatalf("key not released after panic: Pending = %d", f.Pending())
	}
	// The key must be reusable afterwards.
	v, shared, err := f.Do("k", func() (int, error) { return 9, nil })
	if v != 9 || shared || err != nil {
		t.Fatalf("post-panic Do = (%d, %v, %v), want (9, false, nil)", v, shared, err)
	}
}

// A follower whose context ends while parked unblocks immediately
// with the context's error; the leader's computation is unaffected.
func TestFlightFollowerCancellation(t *testing.T) {
	var f Flight[int]
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, shared, err := f.Do("k", func() (int, error) {
			close(leaderIn)
			<-release
			return 42, nil
		})
		if v != 42 || shared || err != nil {
			t.Errorf("leader got (%d, %v, %v), want (42, false, nil)", v, shared, err)
		}
	}()

	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		_, shared, err := f.DoCtx(ctx, "k", func() (int, error) {
			t.Error("cancelled follower executed fn")
			return 0, nil
		})
		if !shared || !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled follower got (shared=%v, err=%v), want (true, context.Canceled)", shared, err)
		}
	}()
	waitFor(t, func() bool { return f.Waiting("k") == 1 }, "follower parked")
	cancel()
	<-followerDone // unblocks while the leader is still computing
	if n := f.Waiting("k"); n != 0 {
		t.Fatalf("Waiting = %d after follower cancellation, want 0", n)
	}
	close(release)
	<-leaderDone
}

// Distinct keys never wait on each other.
func TestFlightDistinctKeysIndependent(t *testing.T) {
	var f Flight[int]
	blockA := make(chan struct{})
	aIn := make(chan struct{})
	go f.Do("a", func() (int, error) { close(aIn); <-blockA; return 0, nil })
	<-aIn
	v, shared, err := f.Do("b", func() (int, error) { return 7, nil })
	if v != 7 || shared || err != nil {
		t.Fatalf("Do(b) = %d, %v, %v while a in flight", v, shared, err)
	}
	if f.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (only a)", f.Pending())
	}
	close(blockA)
}
