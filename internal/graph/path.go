package graph

import (
	"fmt"
	"strings"
)

// Path is a sequence of adjacent edges connecting distinct vertices
// (Section 2.1). A Path value does not carry its Graph; use the
// Graph-side methods (ValidPath, PathLengthM, ...) for checks that
// need topology. The pure-sequence operations (sub-path tests,
// intersection, difference) are defined on Path directly, exactly
// matching the paper's ∩ and \ operators on edge sequences.
type Path []EdgeID

// Cardinality returns |P|, the number of edges in the path.
func (p Path) Cardinality() int { return len(p) }

// Equal reports whether p and q are the same edge sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of p.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// String renders the path as "<e1,e2,...>".
func (p Path) String() string {
	var sb strings.Builder
	sb.WriteByte('<')
	for i, e := range p {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "e%d", e)
	}
	sb.WriteByte('>')
	return sb.String()
}

// Key returns a compact string key usable as a map key for the path.
// Unlike String it has no decorative punctuation.
func (p Path) Key() string {
	var sb strings.Builder
	for i, e := range p {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", e)
	}
	return sb.String()
}

// IndexOfSubPath returns the index in p at which sub starts as a
// contiguous edge subsequence, or -1 if sub is not a sub-path of p.
// The empty path is not a sub-path of anything.
func (p Path) IndexOfSubPath(sub Path) int {
	if len(sub) == 0 || len(sub) > len(p) {
		return -1
	}
	for i := 0; i+len(sub) <= len(p); i++ {
		ok := true
		for j := range sub {
			if p[i+j] != sub[j] {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// HasSubPath reports whether sub is a sub-path of p (Section 2.1).
func (p Path) HasSubPath(sub Path) bool { return p.IndexOfSubPath(sub) >= 0 }

// Intersect returns p ∩ q: the longest contiguous edge sequence shared
// by both paths, per the paper's example ⟨e1,e2,e3⟩ ∩ ⟨e2,e3,e4⟩ =
// ⟨e2,e3⟩. When several shared runs have the same maximal length the
// earliest one in p is returned. Returns nil when the paths share no
// contiguous run.
func (p Path) Intersect(q Path) Path {
	bestLen, bestAt := 0, -1
	for i := range p {
		for j := range q {
			if p[i] != q[j] {
				continue
			}
			k := 0
			for i+k < len(p) && j+k < len(q) && p[i+k] == q[j+k] {
				k++
			}
			if k > bestLen {
				bestLen, bestAt = k, i
			}
		}
	}
	if bestAt < 0 {
		return nil
	}
	return p[bestAt : bestAt+bestLen].Clone()
}

// Minus returns p \ q: the sub-path of p that excludes the edges in q,
// per the paper's example ⟨e1,e2,e3⟩ \ ⟨e2,e3,e4⟩ = ⟨e1⟩. The result
// keeps every edge of p that does not occur in q, in order.
func (p Path) Minus(q Path) Path {
	drop := make(map[EdgeID]struct{}, len(q))
	for _, e := range q {
		drop[e] = struct{}{}
	}
	var out Path
	for _, e := range p {
		if _, ok := drop[e]; !ok {
			out = append(out, e)
		}
	}
	return out
}

// Prefix returns the first n edges of p.
func (p Path) Prefix(n int) Path { return p[:n].Clone() }

// Suffix returns the last n edges of p.
func (p Path) Suffix(n int) Path { return p[len(p)-n:].Clone() }

// CombineOverlapping merges two paths of equal cardinality k that share
// k−1 edges (p's suffix equals q's prefix) into the cardinality-(k+1)
// path, mirroring the Apriori-style growth of Section 3.2. It returns
// nil when the paths do not chain together that way.
func CombineOverlapping(p, q Path) Path {
	k := len(p)
	if k == 0 || len(q) != k {
		return nil
	}
	for i := 1; i < k; i++ {
		if p[i] != q[i-1] {
			return nil
		}
	}
	out := make(Path, 0, k+1)
	out = append(out, p...)
	out = append(out, q[k-1])
	return out
}

// ValidPath reports whether p is a valid path in g: non-empty,
// consecutive edges adjacent, and all visited vertices distinct
// (the paper requires simple paths).
func (g *Graph) ValidPath(p Path) bool {
	if len(p) == 0 {
		return false
	}
	seen := make(map[VertexID]struct{}, len(p)+1)
	for i, id := range p {
		if id < 0 || int(id) >= len(g.edges) {
			return false
		}
		e := g.edges[id]
		if i == 0 {
			seen[e.From] = struct{}{}
		} else {
			prev := g.edges[p[i-1]]
			if prev.To != e.From {
				return false
			}
		}
		if _, dup := seen[e.To]; dup {
			return false
		}
		seen[e.To] = struct{}{}
	}
	return true
}

// PathLengthM returns the total length of p in meters.
func (g *Graph) PathLengthM(p Path) float64 {
	var sum float64
	for _, e := range p {
		sum += g.edges[e].LengthM
	}
	return sum
}

// PathFreeFlowSeconds returns the minimum legal travel time of p.
func (g *Graph) PathFreeFlowSeconds(p Path) float64 {
	var sum float64
	for _, e := range p {
		sum += g.edges[e].FreeFlowSeconds()
	}
	return sum
}

// PathVertices returns the vertex sequence visited by p, including the
// start of the first edge. The path must be valid.
func (g *Graph) PathVertices(p Path) []VertexID {
	if len(p) == 0 {
		return nil
	}
	vs := make([]VertexID, 0, len(p)+1)
	vs = append(vs, g.edges[p[0]].From)
	for _, e := range p {
		vs = append(vs, g.edges[e].To)
	}
	return vs
}

// EdgesToPath converts edge IDs to a Path after validating adjacency;
// it returns an error (instead of panicking) because inputs typically
// come from user queries or files.
func (g *Graph) EdgesToPath(ids []EdgeID) (Path, error) {
	p := Path(ids)
	if !g.ValidPath(p) {
		return nil, fmt.Errorf("graph: edge sequence %v is not a valid simple path", p)
	}
	return p.Clone(), nil
}
