package graph

import (
	"fmt"
	"math"

	"repro/internal/geo"
)

// VertexID identifies a vertex within a Graph.
type VertexID int32

// EdgeID identifies an edge within a Graph.
type EdgeID int32

// NoVertex and NoEdge are sentinel "absent" identifiers.
const (
	NoVertex VertexID = -1
	NoEdge   EdgeID   = -1
)

// RoadClass categorizes an edge; it determines default speed limits in
// the synthetic networks and lets workloads skew traffic by road type.
type RoadClass uint8

// Road classes, ordered from highest to lowest capacity.
const (
	ClassMotorway RoadClass = iota
	ClassPrimary
	ClassSecondary
	ClassResidential
	numRoadClasses
)

// String returns the lowercase class name.
func (c RoadClass) String() string {
	switch c {
	case ClassMotorway:
		return "motorway"
	case ClassPrimary:
		return "primary"
	case ClassSecondary:
		return "secondary"
	case ClassResidential:
		return "residential"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// NumRoadClasses is the number of distinct road classes.
const NumRoadClasses = int(numRoadClasses)

// Vertex is a road intersection or the end of a road.
type Vertex struct {
	ID VertexID
	Pt geo.Point
}

// Edge is a directed road segment from From to To.
type Edge struct {
	ID       EdgeID
	From, To VertexID
	LengthM  float64   // segment length in meters
	SpeedKmh float64   // legal speed limit in km/h
	Class    RoadClass // road category
}

// FreeFlowSeconds returns the minimum legal traversal time of the edge.
func (e Edge) FreeFlowSeconds() float64 {
	if e.SpeedKmh <= 0 {
		return math.Inf(1)
	}
	return e.LengthM / (e.SpeedKmh / 3.6)
}

// Graph is an immutable-after-Freeze directed road network.
//
// Build a graph with NewBuilder / AddVertex / AddEdge / Freeze. A
// frozen Graph is safe for concurrent readers.
type Graph struct {
	vertices []Vertex
	edges    []Edge
	out      [][]EdgeID // out[v] lists edges leaving v
	in       [][]EdgeID // in[v] lists edges entering v
	frozen   bool
}

// Builder incrementally constructs a Graph.
type Builder struct {
	g *Graph
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder {
	return &Builder{g: &Graph{}}
}

// AddVertex appends a vertex at point pt and returns its ID.
func (b *Builder) AddVertex(pt geo.Point) VertexID {
	id := VertexID(len(b.g.vertices))
	b.g.vertices = append(b.g.vertices, Vertex{ID: id, Pt: pt})
	return id
}

// AddEdge appends a directed edge and returns its ID. It panics if the
// endpoints do not exist or coincide, since that indicates a generator
// bug rather than a runtime condition.
func (b *Builder) AddEdge(from, to VertexID, lengthM, speedKmh float64, class RoadClass) EdgeID {
	n := VertexID(len(b.g.vertices))
	if from < 0 || from >= n || to < 0 || to >= n {
		panic(fmt.Sprintf("graph: edge endpoint out of range: %d->%d (have %d vertices)", from, to, n))
	}
	if from == to {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", from))
	}
	if lengthM <= 0 {
		panic(fmt.Sprintf("graph: non-positive edge length %v", lengthM))
	}
	id := EdgeID(len(b.g.edges))
	b.g.edges = append(b.g.edges, Edge{
		ID: id, From: from, To: to,
		LengthM: lengthM, SpeedKmh: speedKmh, Class: class,
	})
	return id
}

// Freeze finalizes the graph: it builds adjacency indexes and returns
// the graph. The builder must not be used afterwards.
func (b *Builder) Freeze() *Graph {
	g := b.g
	b.g = nil
	g.out = make([][]EdgeID, len(g.vertices))
	g.in = make([][]EdgeID, len(g.vertices))
	for _, e := range g.edges {
		g.out[e.From] = append(g.out[e.From], e.ID)
		g.in[e.To] = append(g.in[e.To], e.ID)
	}
	g.frozen = true
	return g
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Vertex returns the vertex with the given ID.
func (g *Graph) Vertex(id VertexID) Vertex { return g.vertices[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns the backing edge slice; callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Vertices returns the backing vertex slice; callers must not modify it.
func (g *Graph) Vertices() []Vertex { return g.vertices }

// Out returns the IDs of edges leaving v; callers must not modify it.
func (g *Graph) Out(v VertexID) []EdgeID { return g.out[v] }

// In returns the IDs of edges entering v; callers must not modify it.
func (g *Graph) In(v VertexID) []EdgeID { return g.in[v] }

// NextEdges returns the edges adjacent to e, i.e. those departing from
// e's end vertex (Section 2.1: two edges are adjacent if one edge's
// end vertex equals the other's start vertex).
func (g *Graph) NextEdges(e EdgeID) []EdgeID {
	return g.out[g.edges[e].To]
}

// Adjacent reports whether b may directly follow a on a path.
func (g *Graph) Adjacent(a, b EdgeID) bool {
	return g.edges[a].To == g.edges[b].From
}

// EdgeMidpoint returns the midpoint of the straight line between the
// edge's endpoints; used for coarse spatial indexing.
func (g *Graph) EdgeMidpoint(e EdgeID) geo.Point {
	ed := g.edges[e]
	a := g.vertices[ed.From].Pt
	b := g.vertices[ed.To].Pt
	return geo.Point{Lat: (a.Lat + b.Lat) / 2, Lon: (a.Lon + b.Lon) / 2}
}

// BBox returns the bounding box of all vertices.
func (g *Graph) BBox() geo.BBox {
	b := geo.EmptyBBox()
	for _, v := range g.vertices {
		b.Extend(v.Pt)
	}
	return b
}
