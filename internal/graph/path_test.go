package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPathStringAndKey(t *testing.T) {
	p := Path{0, 1, 2}
	if got := p.String(); got != "<e0,e1,e2>" {
		t.Errorf("String = %q", got)
	}
	if got := p.Key(); got != "0,1,2" {
		t.Errorf("Key = %q", got)
	}
	if Path(nil).String() != "<>" {
		t.Error("empty path string")
	}
}

func TestPathEqualClone(t *testing.T) {
	p := Path{1, 2, 3}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone should be equal")
	}
	q[0] = 9
	if p.Equal(q) {
		t.Fatal("mutated clone should differ")
	}
	if p.Equal(Path{1, 2}) {
		t.Fatal("different lengths should differ")
	}
}

func TestSubPath(t *testing.T) {
	p := Path{1, 2, 3, 4, 5}
	cases := []struct {
		sub  Path
		want int
	}{
		{Path{1, 2, 3, 4, 5}, 0},
		{Path{1}, 0},
		{Path{3, 4}, 2},
		{Path{5}, 4},
		{Path{2, 4}, -1}, // not contiguous
		{Path{}, -1},     // empty is not a sub-path
		{Path{1, 2, 3, 4, 5, 6}, -1},
		{Path{6}, -1},
	}
	for _, c := range cases {
		if got := p.IndexOfSubPath(c.sub); got != c.want {
			t.Errorf("IndexOfSubPath(%v) = %d, want %d", c.sub, got, c.want)
		}
		if got := p.HasSubPath(c.sub); got != (c.want >= 0) {
			t.Errorf("HasSubPath(%v) = %v", c.sub, got)
		}
	}
}

func TestIntersectPaperExample(t *testing.T) {
	// ⟨e1,e2,e3⟩ ∩ ⟨e2,e3,e4⟩ = ⟨e2,e3⟩
	got := Path{1, 2, 3}.Intersect(Path{2, 3, 4})
	if !got.Equal(Path{2, 3}) {
		t.Fatalf("Intersect = %v, want <e2,e3>", got)
	}
	// ⟨e1,e2,e3⟩ \ ⟨e2,e3,e4⟩ = ⟨e1⟩
	if got := (Path{1, 2, 3}).Minus(Path{2, 3, 4}); !got.Equal(Path{1}) {
		t.Fatalf("Minus = %v, want <e1>", got)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	if got := (Path{1, 2}).Intersect(Path{3, 4}); got != nil {
		t.Fatalf("disjoint Intersect = %v, want nil", got)
	}
}

func TestIntersectFullOverlap(t *testing.T) {
	p := Path{7, 8, 9}
	if got := p.Intersect(p); !got.Equal(p) {
		t.Fatalf("self Intersect = %v", got)
	}
}

func TestMinusAll(t *testing.T) {
	if got := (Path{1, 2}).Minus(Path{1, 2}); len(got) != 0 {
		t.Fatalf("Minus all = %v, want empty", got)
	}
	if got := (Path{1, 2}).Minus(nil); !got.Equal(Path{1, 2}) {
		t.Fatalf("Minus nil = %v", got)
	}
}

func TestPrefixSuffix(t *testing.T) {
	p := Path{1, 2, 3, 4}
	if got := p.Prefix(2); !got.Equal(Path{1, 2}) {
		t.Fatalf("Prefix = %v", got)
	}
	if got := p.Suffix(2); !got.Equal(Path{3, 4}) {
		t.Fatalf("Suffix = %v", got)
	}
}

func TestCombineOverlapping(t *testing.T) {
	cases := []struct {
		p, q, want Path
	}{
		{Path{1, 2}, Path{2, 3}, Path{1, 2, 3}},
		{Path{1}, Path{2}, Path{1, 2}},
		{Path{1, 2, 3}, Path{2, 3, 4}, Path{1, 2, 3, 4}},
		{Path{1, 2}, Path{3, 4}, nil},
		{Path{1, 2}, Path{2}, nil}, // length mismatch
		{nil, nil, nil},
	}
	for _, c := range cases {
		got := CombineOverlapping(c.p, c.q)
		if (got == nil) != (c.want == nil) || (got != nil && !got.Equal(c.want)) {
			t.Errorf("CombineOverlapping(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestIntersectIsSubPathOfBoth(t *testing.T) {
	// Property: the intersection of two random paths, when non-nil, is a
	// contiguous sub-path of both inputs.
	rnd := rand.New(rand.NewSource(42))
	f := func() bool {
		mk := func() Path {
			n := 1 + rnd.Intn(8)
			p := make(Path, n)
			start := rnd.Intn(5)
			for i := range p {
				p[i] = EdgeID(start + i) // contiguous run so overlaps happen
			}
			return p
		}
		p, q := mk(), mk()
		in := p.Intersect(q)
		if in == nil {
			return true
		}
		return p.HasSubPath(in) && q.HasSubPath(in)
	}
	for i := 0; i < 200; i++ {
		if !f() {
			t.Fatal("intersection not a sub-path of both inputs")
		}
	}
}

func TestCombineGrowthProperty(t *testing.T) {
	// Property: combining a path's prefix(k) with its suffix-aligned
	// window reconstructs the original path one edge longer each time.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 2 + rnd.Intn(10)
		p := make(Path, n)
		for i := range p {
			p[i] = EdgeID(i * 3)
		}
		for k := 1; k < n; k++ {
			a := p[:k]
			b := p[1 : k+1]
			got := CombineOverlapping(a, b)
			if !got.Equal(p[:k+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
