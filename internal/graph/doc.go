// Package graph models a road network as a directed graph, following
// the formalization in Section 2.1 of Dai et al. (PVLDB 2016): a
// vertex is an intersection or road end, an edge is a directed road
// segment, and a path is a sequence of adjacent edges over distinct
// vertices.
package graph
