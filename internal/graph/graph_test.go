package graph

import (
	"math"
	"testing"

	"repro/internal/geo"
)

// paperGraph builds the road network of Figure 2(a): vertices VA..VF
// and edges e1..e6 (IDs 0..5 here).
//
//	e1: VA->VB   e2: VB->VC   e3: VC->VD   e4: VD->VE
//	e5: VE->VF   e6: VB->VE (stand-in for the extra edge)
func paperGraph(t testing.TB) (*Graph, []EdgeID) {
	t.Helper()
	b := NewBuilder()
	pts := []geo.Point{
		{Lat: 57.00, Lon: 9.90}, // VA
		{Lat: 57.01, Lon: 9.90}, // VB
		{Lat: 57.02, Lon: 9.90}, // VC
		{Lat: 57.02, Lon: 9.92}, // VD
		{Lat: 57.01, Lon: 9.92}, // VE
		{Lat: 57.00, Lon: 9.92}, // VF
	}
	var vs []VertexID
	for _, p := range pts {
		vs = append(vs, b.AddVertex(p))
	}
	type ed struct{ f, t int }
	eds := []ed{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 4}}
	var es []EdgeID
	for _, e := range eds {
		es = append(es, b.AddEdge(vs[e.f], vs[e.t], 500, 50, ClassSecondary))
	}
	return b.Freeze(), es
}

func TestBuilderAndAccessors(t *testing.T) {
	g, es := paperGraph(t)
	if g.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d, want 6", g.NumVertices())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6", g.NumEdges())
	}
	e := g.Edge(es[0])
	if e.From != 0 || e.To != 1 {
		t.Fatalf("edge 0 endpoints = %d->%d, want 0->1", e.From, e.To)
	}
	if got := e.FreeFlowSeconds(); math.Abs(got-36) > 1e-9 {
		t.Fatalf("FreeFlowSeconds = %v, want 36 (500m at 50km/h)", got)
	}
	// VB has two out edges: e2 and e6.
	if got := len(g.Out(1)); got != 2 {
		t.Fatalf("out(VB) = %d, want 2", got)
	}
	if got := len(g.In(4)); got != 2 { // VE: e4 and e6
		t.Fatalf("in(VE) = %d, want 2", got)
	}
}

func TestAdjacency(t *testing.T) {
	g, es := paperGraph(t)
	if !g.Adjacent(es[0], es[1]) {
		t.Error("e1 and e2 should be adjacent")
	}
	if g.Adjacent(es[1], es[0]) {
		t.Error("e2 then e1 should not be adjacent")
	}
	next := g.NextEdges(es[0])
	if len(next) != 2 {
		t.Fatalf("NextEdges(e1) = %v, want 2 edges", next)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(b *Builder, v VertexID)
	}{
		{"out of range", func(b *Builder, v VertexID) { b.AddEdge(v, v+5, 10, 50, ClassPrimary) }},
		{"self loop", func(b *Builder, v VertexID) { b.AddEdge(v, v, 10, 50, ClassPrimary) }},
		{"bad length", func(b *Builder, v VertexID) {
			w := b.AddVertex(geo.Point{Lat: 1, Lon: 1})
			b.AddEdge(v, w, 0, 50, ClassPrimary)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			b := NewBuilder()
			v := b.AddVertex(geo.Point{Lat: 0, Lon: 0})
			c.f(b, v)
		})
	}
}

func TestValidPath(t *testing.T) {
	g, es := paperGraph(t)
	cases := []struct {
		name string
		p    Path
		want bool
	}{
		{"single edge", Path{es[0]}, true},
		{"chain e1..e5", Path{es[0], es[1], es[2], es[3], es[4]}, true},
		{"shortcut e1,e6,e5", Path{es[0], es[5], es[4]}, true},
		{"empty", Path{}, false},
		{"non adjacent", Path{es[0], es[2]}, false},
		{"bad id", Path{99}, false},
		{"negative id", Path{-2}, false},
	}
	for _, c := range cases {
		if got := g.ValidPath(c.p); got != c.want {
			t.Errorf("%s: ValidPath(%v) = %v, want %v", c.name, c.p, got, c.want)
		}
	}
}

func TestValidPathRejectsVertexRevisit(t *testing.T) {
	// Build a small cycle a->b->c->a and check the full loop is
	// rejected (vertices must be distinct).
	b := NewBuilder()
	va := b.AddVertex(geo.Point{Lat: 0, Lon: 0})
	vb := b.AddVertex(geo.Point{Lat: 0, Lon: 0.01})
	vc := b.AddVertex(geo.Point{Lat: 0.01, Lon: 0})
	e1 := b.AddEdge(va, vb, 100, 50, ClassPrimary)
	e2 := b.AddEdge(vb, vc, 100, 50, ClassPrimary)
	e3 := b.AddEdge(vc, va, 100, 50, ClassPrimary)
	g := b.Freeze()
	if !g.ValidPath(Path{e1, e2}) {
		t.Fatal("open chain should be valid")
	}
	if g.ValidPath(Path{e1, e2, e3}) {
		t.Fatal("full cycle revisits the start vertex; must be invalid")
	}
}

func TestPathVerticesAndLength(t *testing.T) {
	g, es := paperGraph(t)
	p := Path{es[0], es[1], es[2]}
	vs := g.PathVertices(p)
	want := []VertexID{0, 1, 2, 3}
	if len(vs) != len(want) {
		t.Fatalf("PathVertices = %v, want %v", vs, want)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("PathVertices = %v, want %v", vs, want)
		}
	}
	if got := g.PathLengthM(p); got != 1500 {
		t.Fatalf("PathLengthM = %v, want 1500", got)
	}
	if got := g.PathFreeFlowSeconds(p); math.Abs(got-108) > 1e-9 {
		t.Fatalf("PathFreeFlowSeconds = %v, want 108", got)
	}
}

func TestEdgesToPath(t *testing.T) {
	g, es := paperGraph(t)
	if _, err := g.EdgesToPath([]EdgeID{es[0], es[1]}); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
	if _, err := g.EdgesToPath([]EdgeID{es[0], es[3]}); err == nil {
		t.Fatal("invalid sequence accepted")
	}
}

func TestShortestPath(t *testing.T) {
	g, es := paperGraph(t)
	// VA -> VF: direct chain is 5 edges (2500m); via e6 is 3 edges (1500m).
	p, dist, ok := g.ShortestPath(0, 5, LengthWeight)
	if !ok {
		t.Fatal("no path found")
	}
	want := Path{es[0], es[5], es[4]}
	if !p.Equal(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	if dist != 1500 {
		t.Fatalf("dist = %v, want 1500", dist)
	}
	if !g.ValidPath(p) {
		t.Fatal("shortest path must be valid")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g, _ := paperGraph(t)
	// Nothing leaves VF, so VF -> VA is unreachable.
	if _, _, ok := g.ShortestPath(5, 0, LengthWeight); ok {
		t.Fatal("expected unreachable")
	}
	if _, _, ok := g.ShortestPath(2, 2, LengthWeight); ok {
		t.Fatal("src == dst should report no path")
	}
}

func TestShortestDistancesConsistent(t *testing.T) {
	g, _ := paperGraph(t)
	d := g.ShortestDistances(0, LengthWeight)
	for v := VertexID(1); int(v) < g.NumVertices(); v++ {
		p, dist, ok := g.ShortestPath(0, v, LengthWeight)
		if !ok {
			if !math.IsInf(d[v], 1) {
				t.Errorf("vertex %d: distances disagree on reachability", v)
			}
			continue
		}
		if math.Abs(d[v]-dist) > 1e-9 {
			t.Errorf("vertex %d: ShortestDistances %v vs ShortestPath %v", v, d[v], dist)
		}
		if !g.ValidPath(p) {
			t.Errorf("vertex %d: invalid path", v)
		}
	}
}

func TestReverseShortestDistances(t *testing.T) {
	g, _ := paperGraph(t)
	rd := g.ReverseShortestDistances(5, LengthWeight)
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		if v == 5 {
			if rd[v] != 0 {
				t.Errorf("dist from dst to itself = %v", rd[v])
			}
			continue
		}
		_, dist, ok := g.ShortestPath(v, 5, LengthWeight)
		if !ok {
			if !math.IsInf(rd[v], 1) {
				t.Errorf("vertex %d: reverse distances disagree on reachability", v)
			}
			continue
		}
		if math.Abs(rd[v]-dist) > 1e-9 {
			t.Errorf("vertex %d: reverse %v vs forward %v", v, rd[v], dist)
		}
	}
}

func TestRandomWalkPath(t *testing.T) {
	g, es := paperGraph(t)
	rnd := func(n int) int { return 0 }
	p := g.RandomWalkPath(es[0], 3, rnd)
	if p == nil {
		t.Fatal("walk failed")
	}
	if len(p) != 3 {
		t.Fatalf("walk length = %d, want 3", len(p))
	}
	if !g.ValidPath(p) {
		t.Fatalf("walk produced invalid path %v", p)
	}
	// Asking for more edges than any simple path has must fail.
	if p := g.RandomWalkPath(es[0], 10, rnd); p != nil {
		t.Fatalf("expected dead end, got %v", p)
	}
	if p := g.RandomWalkPath(es[0], 0, rnd); p != nil {
		t.Fatalf("n=0 should return nil, got %v", p)
	}
}

func TestRoadClassString(t *testing.T) {
	if ClassMotorway.String() != "motorway" || ClassResidential.String() != "residential" {
		t.Error("unexpected class names")
	}
	if RoadClass(99).String() == "" {
		t.Error("unknown class should still render")
	}
}

func TestEdgeMidpointAndBBox(t *testing.T) {
	g, es := paperGraph(t)
	m := g.EdgeMidpoint(es[0])
	if math.Abs(m.Lat-57.005) > 1e-9 || math.Abs(m.Lon-9.90) > 1e-9 {
		t.Fatalf("midpoint = %v", m)
	}
	bb := g.BBox()
	if !bb.Contains(geo.Point{Lat: 57.01, Lon: 9.91}) {
		t.Fatal("bbox should contain interior point")
	}
}
