package graph

import (
	"container/heap"
	"math"
)

// WeightFunc assigns a non-negative traversal cost to an edge. It is
// the routing-time analogue of the paper's deterministic edge weights;
// the trajectory generator perturbs it per trip to diversify routes.
type WeightFunc func(e Edge) float64

// LengthWeight weighs edges by length in meters.
func LengthWeight(e Edge) float64 { return e.LengthM }

// FreeFlowWeight weighs edges by free-flow travel time in seconds.
func FreeFlowWeight(e Edge) float64 { return e.FreeFlowSeconds() }

type pqItem struct {
	vertex VertexID
	dist   float64
	index  int
}

type priorityQueue []*pqItem

func (pq priorityQueue) Len() int           { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool { return pq[i].dist < pq[j].dist }
func (pq priorityQueue) Swap(i, j int)      { pq[i], pq[j] = pq[j], pq[i]; pq[i].index = i; pq[j].index = j }
func (pq *priorityQueue) Push(x interface{}) {
	it := x.(*pqItem)
	it.index = len(*pq)
	*pq = append(*pq, it)
}
func (pq *priorityQueue) Pop() interface{} {
	old := *pq
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*pq = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra from src to dst under w and returns the
// path as an edge sequence. ok is false when dst is unreachable or
// src == dst.
func (g *Graph) ShortestPath(src, dst VertexID, w WeightFunc) (p Path, dist float64, ok bool) {
	if src == dst {
		return nil, 0, false
	}
	distTo := make([]float64, len(g.vertices))
	edgeTo := make([]EdgeID, len(g.vertices))
	for i := range distTo {
		distTo[i] = math.Inf(1)
		edgeTo[i] = NoEdge
	}
	distTo[src] = 0

	pq := &priorityQueue{}
	heap.Init(pq)
	heap.Push(pq, &pqItem{vertex: src, dist: 0})
	settled := make([]bool, len(g.vertices))

	for pq.Len() > 0 {
		it := heap.Pop(pq).(*pqItem)
		v := it.vertex
		if settled[v] {
			continue
		}
		settled[v] = true
		if v == dst {
			break
		}
		for _, eid := range g.out[v] {
			e := g.edges[eid]
			nd := distTo[v] + w(e)
			if nd < distTo[e.To] {
				distTo[e.To] = nd
				edgeTo[e.To] = eid
				heap.Push(pq, &pqItem{vertex: e.To, dist: nd})
			}
		}
	}
	if math.IsInf(distTo[dst], 1) {
		return nil, 0, false
	}
	// Walk predecessors back to src.
	var rev Path
	for v := dst; v != src; {
		eid := edgeTo[v]
		rev = append(rev, eid)
		v = g.edges[eid].From
	}
	p = make(Path, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		p = append(p, rev[i])
	}
	return p, distTo[dst], true
}

// ShortestDistances runs Dijkstra from src to all vertices under w and
// returns the distance array (Inf for unreachable vertices). Used by
// the routing package to compute admissible lower bounds.
func (g *Graph) ShortestDistances(src VertexID, w WeightFunc) []float64 {
	distTo := make([]float64, len(g.vertices))
	for i := range distTo {
		distTo[i] = math.Inf(1)
	}
	distTo[src] = 0
	pq := &priorityQueue{}
	heap.Init(pq)
	heap.Push(pq, &pqItem{vertex: src, dist: 0})
	settled := make([]bool, len(g.vertices))
	for pq.Len() > 0 {
		it := heap.Pop(pq).(*pqItem)
		v := it.vertex
		if settled[v] {
			continue
		}
		settled[v] = true
		for _, eid := range g.out[v] {
			e := g.edges[eid]
			nd := distTo[v] + w(e)
			if nd < distTo[e.To] {
				distTo[e.To] = nd
				heap.Push(pq, &pqItem{vertex: e.To, dist: nd})
			}
		}
	}
	return distTo
}

// ReverseShortestDistances returns, for every vertex v, the shortest
// distance from v to dst under w (Inf when dst is unreachable from v).
// It runs Dijkstra on the reverse graph.
func (g *Graph) ReverseShortestDistances(dst VertexID, w WeightFunc) []float64 {
	distTo := make([]float64, len(g.vertices))
	for i := range distTo {
		distTo[i] = math.Inf(1)
	}
	distTo[dst] = 0
	pq := &priorityQueue{}
	heap.Init(pq)
	heap.Push(pq, &pqItem{vertex: dst, dist: 0})
	settled := make([]bool, len(g.vertices))
	for pq.Len() > 0 {
		it := heap.Pop(pq).(*pqItem)
		v := it.vertex
		if settled[v] {
			continue
		}
		settled[v] = true
		for _, eid := range g.in[v] {
			e := g.edges[eid]
			nd := distTo[v] + w(e)
			if nd < distTo[e.From] {
				distTo[e.From] = nd
				heap.Push(pq, &pqItem{vertex: e.From, dist: nd})
			}
		}
	}
	return distTo
}

// RandomWalkPath grows a simple path of exactly n edges starting from
// edge start by repeatedly following a random adjacent edge, avoiding
// vertex revisits. rnd must return a non-negative pseudo-random int.
// Returns nil when the walk dead-ends before reaching n edges. Used by
// workload generators to sample query paths of a given cardinality.
func (g *Graph) RandomWalkPath(start EdgeID, n int, rnd func(n int) int) Path {
	if n <= 0 {
		return nil
	}
	p := Path{start}
	visited := map[VertexID]struct{}{
		g.edges[start].From: {},
		g.edges[start].To:   {},
	}
	for len(p) < n {
		next := g.NextEdges(p[len(p)-1])
		// Collect feasible continuations (no vertex revisits).
		var feas []EdgeID
		for _, eid := range next {
			if _, dup := visited[g.edges[eid].To]; !dup {
				feas = append(feas, eid)
			}
		}
		if len(feas) == 0 {
			return nil
		}
		e := feas[rnd(len(feas))]
		p = append(p, e)
		visited[g.edges[e].To] = struct{}{}
	}
	return p
}
