package pathcost

// Batch-planner acceptance benchmarks: a prefix-heavy 64-query batch
// answered independently (every query pays its full chain of
// convolutions) versus planned (the shared prefix trie convolves each
// distinct sub-path once). Both sides run on the same bounded worker
// pool, so the measured gap is the sharing, not parallelism. Run with:
//
//	go test -bench 'BenchmarkBatch' -benchmem .

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

var (
	planBenchOnce    sync.Once
	planBenchSys     *System
	planBenchQueries []PlanQuery
	planBenchErr     error
)

// planBenchSetup trains the system and samples the 64-query batch:
// three 12-edge trunks, each contributing every prefix, padded with
// duplicates — the shape a routing frontier or a commuter fleet
// produces.
func planBenchSetup(b *testing.B) (*System, []PlanQuery) {
	b.Helper()
	planBenchOnce.Do(func() {
		params := DefaultParams()
		params.Beta = 20
		params.MaxRank = 4
		planBenchSys, planBenchErr = Synthesize(SynthesizeConfig{
			Preset: "test", Trips: 6000, Seed: 9, Params: params,
		})
		if planBenchErr != nil {
			return
		}
		rnd := rand.New(rand.NewSource(7))
		depart := 8*3600 + 60.0
		var queries []PlanQuery
		for len(queries) < 33 {
			trunk, err := planBenchSys.RandomQueryPath(12, rnd.Intn)
			if err != nil {
				planBenchErr = err
				return
			}
			for n := 2; n <= len(trunk); n++ {
				queries = append(queries, PlanQuery{Path: trunk[:n], Depart: depart})
			}
		}
		for i := 0; len(queries) < 64; i++ {
			queries = append(queries, queries[i*3%33])
		}
		planBenchQueries = queries[:64]
	})
	if planBenchErr != nil {
		b.Fatal(planBenchErr)
	}
	return planBenchSys, planBenchQueries
}

// BenchmarkBatchIndependent is the baseline: the batch's queries
// evaluated independently across a bounded pool with no cache, memo
// or planner — every entry re-convolves its whole prefix chain.
func BenchmarkBatchIndependent(b *testing.B) {
	sys, queries := planBenchSetup(b)
	sys.EnableQueryCache(0)
	sys.EnableConvMemo(0)
	sys.DisableBatchPlanner()
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, q := range queries {
			wg.Add(1)
			go func(q PlanQuery) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if _, err := sys.Hybrid().CostDistribution(q.Path, q.Depart, q.Opt); err != nil {
					b.Error(err)
				}
			}(q)
		}
		wg.Wait()
	}
}

// BenchmarkBatchPlanned answers the same batch through the planner:
// one prefix trie, each shared sub-path convolved once, residual
// extensions scheduled in dependency order on the same pool size.
func BenchmarkBatchPlanned(b *testing.B) {
	sys, queries := planBenchSetup(b)
	sys.EnableQueryCache(0)
	sys.EnableConvMemo(0)
	sys.EnableBatchPlanner(runtime.GOMAXPROCS(0))
	defer sys.DisableBatchPlanner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := sys.PlanDistributions(nil, queries, nil, nil)
		for j := range out {
			if out[j].Err != nil {
				b.Fatal(out[j].Err)
			}
		}
	}
}
