package pathcost

import "testing"

// warmMemoAllocBudget bounds the per-query allocations of a
// PathDistribution answered from a warm convolution memo. The memoized
// state already exists, its marginal is cached, and the candidate
// array machinery is pooled, so a hit costs only the memo probe plus
// the result wrapper. Measured ~8; the budget leaves headroom without
// letting a per-cell or per-bucket allocation regression (which would
// add tens to hundreds) slip through.
const warmMemoAllocBudget = 32

func TestPathDistributionWarmMemoAllocBudget(t *testing.T) {
	sys, err := Synthesize(SynthesizeConfig{Preset: "test", Trips: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableConvMemo(1024)
	dense := sys.DensePaths(3, 10)
	if len(dense) == 0 {
		t.Skip("no dense paths")
	}
	dp := dense[0]
	lo, _ := sys.Params.IntervalBounds(dp.Interval)
	if _, err := sys.PathDistribution(dp.Path, lo+60, OD); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if _, err := sys.PathDistribution(dp.Path, lo+60, OD); err != nil {
			t.Fatal(err)
		}
	})
	if n > warmMemoAllocBudget {
		t.Fatalf("warm-memo PathDistribution allocates %v per query, budget %d", n, warmMemoAllocBudget)
	}
}
