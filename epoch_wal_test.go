package pathcost

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/wal"
)

// walBase builds the recovery scenario's raw material: a base system,
// the held-out trajectory stream, and a reference model trained by
// folding the whole stream into the base in one exact publish.
func walBase(t *testing.T) (sys *System, held []*Matched, reference []byte) {
	t.Helper()
	var refSys *System
	sys, held, _, _ = epochBase(t, 211, 1100, 800)
	// The reference is the base system plus the full stream, built
	// independently so no state leaks from the system under test.
	refSys, _, _, _ = epochBase(t, 211, 1100, 800)
	if _, err := refSys.ApplyDeltas(held); err != nil {
		t.Fatal(err)
	}
	return sys, held, modelBytes(t, refSys)
}

// TestWALCrashRecoveryMatchesUninterruptedRun is the kill-and-restart
// differential test: a daemon that staged (and partly published)
// WAL-backed batches, then died without checkpointing, must recover —
// base model + full replay + one publish — to the exact SaveModel
// bytes of an uninterrupted run.
func TestWALCrashRecoveryMatchesUninterruptedRun(t *testing.T) {
	sys, held, reference := walBase(t)
	dir := t.TempDir()

	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rb, rt := sys.AttachWAL(l); rb != 0 || rt != 0 {
		t.Fatalf("fresh WAL replayed %d batches / %d trajectories", rb, rt)
	}

	// Pre-crash life: two batches staged and published, two more staged
	// but never published. No checkpointer is set, so the publish must
	// retain every record.
	cut := len(held) / 4
	batches := [][]*Matched{
		held[:cut], held[cut : 2*cut], held[2*cut : 3*cut], held[3*cut:],
	}
	for i, b := range batches[:2] {
		if acc, rej := sys.StageTrajectories(b); acc != len(b) || rej != 0 {
			t.Fatalf("batch %d staged %d/%d, rejected %d", i, acc, len(b), rej)
		}
	}
	if _, err := sys.PublishEpoch(); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[2:] {
		if acc, _ := sys.StageTrajectories(b); acc != len(b) {
			t.Fatalf("staged %d of %d", acc, len(b))
		}
	}
	// Crash: the process dies here. The in-memory system (with its
	// published epoch 2) is gone; only the WAL directory survives.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh process rebuilds the base model the same way the
	// dead one did, replays the WAL, and publishes once.
	recovered, _, _, _ := epochBase(t, 211, 1100, 800)
	rl, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, rt := recovered.AttachWAL(rl)
	if rb != 4 {
		t.Fatalf("recovery replayed %d batches, want all 4 (nothing was checkpointed)", rb)
	}
	if rt != len(held) {
		t.Fatalf("recovery replayed %d trajectories, want %d", rt, len(held))
	}
	if _, err := recovered.PublishEpoch(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(modelBytes(t, recovered), reference) {
		t.Fatal("recovered model bytes differ from the uninterrupted run")
	}

	// The uninterrupted run itself: the original system publishes its
	// remaining backlog. All three histories converge on one model.
	if _, err := sys.PublishEpoch(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, sys), reference) {
		t.Fatal("uninterrupted run's model bytes differ from the single-publish reference")
	}
}

// TestWALCrashRecoveryDiscardsTornTail: the crash tears the last
// record mid-write. Recovery must serve the intact prefix — equal to a
// run that never received the torn batch — and never fail the loader.
func TestWALCrashRecoveryDiscardsTornTail(t *testing.T) {
	sys, held, _ := walBase(t)
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWAL(l)
	cut := len(held) / 2
	sys.StageTrajectories(held[:cut])
	sys.StageTrajectories(held[cut:])
	l.Close()

	// Tear the tail: the second record loses its last bytes.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-11], 0o644); err != nil {
		t.Fatal(err)
	}

	recovered, _, _, _ := epochBase(t, 211, 1100, 800)
	rl, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, rt := recovered.AttachWAL(rl)
	if rb != 1 || rt != cut {
		t.Fatalf("replayed %d batches / %d trajectories, want 1 / %d (torn tail dropped)", rb, rt, cut)
	}
	if _, err := recovered.PublishEpoch(); err != nil {
		t.Fatal(err)
	}

	oracle, _, _, _ := epochBase(t, 211, 1100, 800)
	if _, err := oracle.ApplyDeltas(held[:cut]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, recovered), modelBytes(t, oracle)) {
		t.Fatal("torn-tail recovery differs from a run that never saw the torn batch")
	}
}

// TestWALCheckpointGatesTruncation: without a checkpointer every
// record survives a publish; with one, the publish persists the model
// and truncates through the published sequence, and the checkpoint
// file holds exactly the served model's bytes.
func TestWALCheckpointGatesTruncation(t *testing.T) {
	sys, held, _ := walBase(t)
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWAL(l)

	cut := len(held) / 2
	sys.StageTrajectories(held[:cut])
	if _, err := sys.PublishEpoch(); err != nil {
		t.Fatal(err)
	}
	if st, _, ok := sys.WALStats(); !ok || st.Checkpoint != 0 {
		t.Fatalf("publish without a checkpointer moved the WAL checkpoint to %d", st.Checkpoint)
	}

	ckptFile := filepath.Join(t.TempDir(), "model.ckpt")
	sys.SetWALCheckpoint(func() error {
		f, err := os.CreateTemp(filepath.Dir(ckptFile), "ckpt-*")
		if err != nil {
			return err
		}
		if err := sys.SaveModel(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(f.Name(), ckptFile)
	})
	sys.StageTrajectories(held[cut:])
	if _, err := sys.PublishEpoch(); err != nil {
		t.Fatal(err)
	}
	st, _, _ := sys.WALStats()
	if st.Checkpoint != 2 {
		t.Fatalf("WAL checkpoint = %d after checkpointed publish, want 2", st.Checkpoint)
	}
	saved, err := os.ReadFile(ckptFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, modelBytes(t, sys)) {
		t.Fatal("checkpoint file differs from the served model")
	}
	l.Close()

	// Reopen: nothing pends — the log is empty up to the checkpoint.
	rl, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p := rl.Pending(); len(p) != 0 {
		t.Fatalf("%d records pending after checkpointed truncation, want 0", len(p))
	}
	rl.Close()
}

// TestWALFailedCheckpointRetainsRecords: a failing checkpoint hook
// must not truncate — losing records because persistence failed would
// be the exact crash-loss the WAL exists to prevent.
func TestWALFailedCheckpointRetainsRecords(t *testing.T) {
	sys, held, _ := walBase(t)
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWAL(l)
	sys.SetWALCheckpoint(func() error { return errors.New("disk full (injected)") })
	sys.StageTrajectories(held[:50])
	if _, err := sys.PublishEpoch(); err != nil {
		t.Fatalf("publish must survive a failed checkpoint: %v", err)
	}
	if st, _, _ := sys.WALStats(); st.Checkpoint != 0 {
		t.Fatalf("failed checkpoint still truncated through %d", st.Checkpoint)
	}
	l.Close()
	rl, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p := rl.Pending(); len(p) != 1 {
		t.Fatalf("%d records pending after failed checkpoint, want 1 (retained)", len(p))
	}
	rl.Close()
}

// TestStageTrajectoriesWALAppendFailureRejects: when the log cannot
// append, the batch must be rejected rather than acknowledged
// non-durably.
func TestStageTrajectoriesWALAppendFailureRejects(t *testing.T) {
	sys, held, _ := walBase(t)
	dir := t.TempDir()
	// SegmentBytes 1 forces a rotation — and thus a file create in the
	// deleted directory — on every append.
	l, err := wal.Open(dir, wal.Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWAL(l)
	if acc, _ := sys.StageTrajectories(held[:10]); acc != 10 {
		t.Fatalf("staged %d of 10", acc)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	acc, rej := sys.StageTrajectories(held[10:20])
	if acc != 0 || rej != 10 {
		t.Fatalf("unappendable batch: accepted %d, rejected %d; want 0, 10", acc, rej)
	}
	if _, errs, _ := sys.WALStats(); errs != 1 {
		t.Fatalf("AppendErrors = %d, want 1", errs)
	}
	if got := sys.StagedCount(); got != 10 {
		t.Fatalf("staged count = %d after rejected batch, want 10", got)
	}
	l.Close()
}

// TestPublishFailureRestoresStagedOrder pins the restore-ordering
// contract: a batch drained by a failing publish is restored AHEAD of
// batches staged while the build ran, so a retry folds everything in
// original staging order — byte-identical to a run where the failure
// never happened.
func TestPublishFailureRestoresStagedOrder(t *testing.T) {
	sys, held, reference := walBase(t)
	cut := len(held) / 2
	first, second := held[:cut], held[cut:]

	sys.StageTrajectories(first)
	sys.buildProbe = func() error {
		// Runs inside the failing publish, after the drain: another
		// client stages the second batch exactly mid-build.
		sys.StageTrajectories(second)
		return errors.New("build failed (injected)")
	}
	if _, err := sys.PublishEpoch(); err == nil {
		t.Fatal("probed publish did not fail")
	}
	sys.buildProbe = nil

	if got := sys.StagedCount(); got != len(held) {
		t.Fatalf("staged count after failed publish = %d, want %d", got, len(held))
	}
	if _, err := sys.PublishEpoch(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, sys), reference) {
		t.Fatal("retry after failed publish is not byte-identical to the in-order reference: restored batch was not ahead of newer stagings")
	}
}

// TestPublishRacesStagingConservation runs a publisher loop against a
// staging stream under the race detector: every staged trajectory must
// be folded exactly once — neither lost nor double-published — and the
// final model must equal the single-publish reference.
func TestPublishRacesStagingConservation(t *testing.T) {
	sys, held, reference := walBase(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sys.PublishEpoch(); err != nil {
				t.Errorf("racing publish: %v", err)
				return
			}
		}
	}()
	// One stager keeps the stream ordered; what races is where the
	// publish boundaries fall.
	for i := 0; i < len(held); i += 37 {
		end := i + 37
		if end > len(held) {
			end = len(held)
		}
		if acc, rej := sys.StageTrajectories(held[i:end]); acc != end-i || rej != 0 {
			t.Fatalf("staged %d/%d, rejected %d", acc, end-i, rej)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := sys.PublishEpoch(); err != nil {
		t.Fatal(err)
	}

	st := sys.EpochStats()
	if st.StagedPending != 0 {
		t.Fatalf("%d trajectories still pending after final publish", st.StagedPending)
	}
	if st.StagedTotal != uint64(len(held)) {
		t.Fatalf("StagedTotal = %d, want %d", st.StagedTotal, len(held))
	}
	if !bytes.Equal(modelBytes(t, sys), reference) {
		t.Fatal("model after racing publishes differs from the single-publish reference")
	}
}
