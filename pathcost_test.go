package pathcost

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
)

var (
	sysOnce sync.Once
	sysInst *System
	sysErr  error
)

// testSystem builds one shared small system for the API tests.
func testSystem(t testing.TB) *System {
	t.Helper()
	sysOnce.Do(func() {
		params := DefaultParams()
		params.Beta = 20
		params.MaxRank = 4
		sysInst, sysErr = Synthesize(SynthesizeConfig{
			Preset: "test", Trips: 4000, Seed: 3, Params: params,
		})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysInst
}

func TestSynthesizeAndStats(t *testing.T) {
	s := testSystem(t)
	if s.Graph.NumVertices() == 0 || s.Data().Len() != 4000 {
		t.Fatalf("system malformed: %d vertices, %d trips", s.Graph.NumVertices(), s.Data().Len())
	}
	st := s.Stats()
	if st.TotalVariables() == 0 {
		t.Fatal("no variables instantiated")
	}
	if st.VariablesByRank[1] == 0 {
		t.Fatal("no rank-2 variables: dependence cannot be captured")
	}
	if c := st.Coverage(); c <= 0 || c > 1 {
		t.Fatalf("coverage = %v", c)
	}
}

func TestPathDistributionAllMethods(t *testing.T) {
	s := testSystem(t)
	dense := s.DensePaths(5, 20)
	if len(dense) == 0 {
		t.Skip("no dense 5-edge paths in this workload")
	}
	dp := dense[0]
	lo, _ := s.Params.IntervalBounds(dp.Interval)
	for _, m := range []Method{OD, RD, HP, LB} {
		res, err := s.PathDistribution(dp.Path, lo+60, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Dist.Mean() <= 0 {
			t.Fatalf("%s: non-positive mean", m)
		}
		if math.Abs(res.Dist.CDF(math.Inf(1))-1) > 1e-9 {
			t.Fatalf("%s: not a distribution", m)
		}
	}
}

func TestODBeatsLBOnDenseHeldOutPath(t *testing.T) {
	// End-to-end accuracy check on the synthetic city: for dense paths
	// with ground truth, OD must on average be at least as close to the
	// truth as LB (Figure 14's ordering).
	s := testSystem(t)
	dense := s.DensePaths(6, 25)
	if len(dense) < 3 {
		t.Skip("not enough dense 6-edge paths")
	}
	var odBetter, total int
	for _, dp := range dense {
		if total >= 10 {
			break
		}
		lo, _ := s.Params.IntervalBounds(dp.Interval)
		depart := lo + 60
		gt, _, err := s.GroundTruth(dp.Path, depart)
		if err != nil {
			continue
		}
		od, err1 := s.PathDistribution(dp.Path, depart, OD)
		lb, err2 := s.PathDistribution(dp.Path, depart, LB)
		if err1 != nil || err2 != nil {
			continue
		}
		// Compare calibration at the quartiles of the ground truth.
		var odErr, lbErr float64
		for _, q := range []float64{0.25, 0.5, 0.75} {
			x := gt.Quantile(q)
			odErr += math.Abs(od.Dist.CDF(x) - q)
			lbErr += math.Abs(lb.Dist.CDF(x) - q)
		}
		if odErr <= lbErr+1e-9 {
			odBetter++
		}
		total++
	}
	if total == 0 {
		t.Skip("no ground-truth paths available")
	}
	if odBetter*2 < total {
		t.Fatalf("OD better on only %d/%d dense paths", odBetter, total)
	}
}

func TestRouteFacade(t *testing.T) {
	s := testSystem(t)
	src := VertexID(5)
	dists := s.Graph.ShortestDistances(src, graph.FreeFlowWeight)
	var dst VertexID = -1
	best := 0.0
	for v, d := range dists {
		if VertexID(v) != src && !math.IsInf(d, 1) && d > best && d < 300 {
			best = d
			dst = VertexID(v)
		}
	}
	if dst < 0 {
		t.Skip("no destination")
	}
	res, err := s.Route(src, dst, 8*3600, best*3, OD)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Graph.ValidPath(res.Path) {
		t.Fatal("invalid route")
	}
	if res.Prob <= 0 {
		t.Fatalf("prob = %v", res.Prob)
	}
}

func TestRandomQueryPath(t *testing.T) {
	s := testSystem(t)
	rnd := rand.New(rand.NewSource(9))
	p, err := s.RandomQueryPath(8, rnd.Intn)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 8 || !s.Graph.ValidPath(p) {
		t.Fatalf("bad random path %v", p)
	}
	if _, err := s.RandomQueryPath(10_000, rnd.Intn); err == nil {
		t.Fatal("impossible cardinality accepted")
	}
}

func TestDensePathsOrderingAndThreshold(t *testing.T) {
	s := testSystem(t)
	dense := s.DensePaths(3, 25)
	for i, dp := range dense {
		if dp.Count < 25 {
			t.Fatalf("entry %d below threshold: %d", i, dp.Count)
		}
		if i > 0 && dp.Count > dense[i-1].Count {
			t.Fatal("not sorted by count")
		}
		if len(dp.Path) != 3 {
			t.Fatalf("wrong cardinality %d", len(dp.Path))
		}
	}
}

func TestNewSystemRejectsBadParams(t *testing.T) {
	s := testSystem(t)
	bad := DefaultParams()
	bad.AlphaMinutes = -1
	if _, err := NewSystem(s.Graph, s.Data(), bad); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestSaveLoadModel(t *testing.T) {
	s := testSystem(t)
	var buf bytes.Buffer
	if err := s.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSystem(s.Graph, nil, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().TotalVariables() != s.Stats().TotalVariables() {
		t.Fatal("variable counts differ after load")
	}
	dense := s.DensePaths(4, 20)
	if len(dense) == 0 {
		t.Skip("no dense paths")
	}
	lo, _ := s.Params.IntervalBounds(dense[0].Interval)
	a, err1 := s.PathDistribution(dense[0].Path, lo+60, OD)
	b, err2 := loaded.PathDistribution(dense[0].Path, lo+60, OD)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(a.Dist.Mean()-b.Dist.Mean()) > 1e-9 {
		t.Fatalf("loaded model answers differently: %v vs %v", a.Dist.Mean(), b.Dist.Mean())
	}
}

func TestTopKRoutesFacade(t *testing.T) {
	s := testSystem(t)
	src := VertexID(5)
	dists := s.Graph.ShortestDistances(src, graph.FreeFlowWeight)
	var dst VertexID = -1
	best := 0.0
	for v, d := range dists {
		if VertexID(v) != src && !math.IsInf(d, 1) && d > best && d < 300 {
			best = d
			dst = VertexID(v)
		}
	}
	if dst < 0 {
		t.Skip("no destination")
	}
	res, err := s.TopKRoutes(src, dst, 8*3600, best*2.5, 3, OD)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Prob > res[i-1].Prob+1e-9 {
			t.Fatal("not sorted")
		}
	}
}
