package pathcost

// Equivalence proof for the incremental sub-path convolution engine:
// everything answered through the memo must be byte-identical to the
// unmemoized evaluation — same bucket boundaries, same masses, same
// routing choices — sequentially and under concurrency.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
)

func memoTestSystem(t testing.TB) *System {
	t.Helper()
	params := DefaultParams()
	params.Beta = 20
	params.MaxRank = 4
	sys, err := Synthesize(SynthesizeConfig{
		Preset: "test", Trips: 5000, Seed: 17, Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// memoWorkload builds a prefix-heavy query workload: long random
// paths plus every one of their prefixes, at two departures.
func memoWorkload(t testing.TB, sys *System) (paths []Path, departs []float64) {
	t.Helper()
	rnd := rand.New(rand.NewSource(99))
	for i := 0; i < 6; i++ {
		p, err := sys.RandomQueryPath(10, rnd.Intn)
		if err != nil {
			t.Fatal(err)
		}
		for n := 1; n <= len(p); n++ {
			paths = append(paths, p[:n])
		}
	}
	return paths, []float64{8 * 3600, 17*3600 + 240}
}

func TestPathDistributionMemoByteIdentical(t *testing.T) {
	sys := memoTestSystem(t)
	paths, departs := memoWorkload(t, sys)

	type key struct {
		i int
		d float64
		m Method
	}
	want := make(map[key][]float64)
	sys.EnableConvMemo(0)
	for i, p := range paths {
		for _, d := range departs {
			for _, m := range []Method{OD, HP, LB} {
				res, err := sys.PathDistribution(p, d, m)
				if err != nil {
					t.Fatalf("plain %v: %v", p, err)
				}
				var flat []float64
				for _, b := range res.Dist.Buckets() {
					flat = append(flat, b.Lo, b.Hi, b.Pr)
				}
				want[key{i, d, m}] = flat
			}
		}
	}

	sys.EnableConvMemo(8192)
	for pass := 0; pass < 2; pass++ { // second pass: deep memo hits
		for i, p := range paths {
			for _, d := range departs {
				for _, m := range []Method{OD, HP, LB} {
					res, err := sys.PathDistribution(p, d, m)
					if err != nil {
						t.Fatalf("memo %v: %v", p, err)
					}
					var flat []float64
					for _, b := range res.Dist.Buckets() {
						flat = append(flat, b.Lo, b.Hi, b.Pr)
					}
					w := want[key{i, d, m}]
					if len(flat) != len(w) {
						t.Fatalf("pass %d %s %v@%v: %d vs %d floats", pass, m, p, d, len(flat), len(w))
					}
					for j := range flat {
						if flat[j] != w[j] {
							t.Fatalf("pass %d %s %v@%v: float %d: memo %v != plain %v",
								pass, m, p, d, j, flat[j], w[j])
						}
					}
				}
			}
		}
	}
	st, ok := sys.ConvMemoStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("conv memo never hit: %+v", st)
	}
}

// TestMemoRoutingAndDistributionConcurrent shares one memo between
// concurrent routing and distribution queries (the /v1/batch shape);
// under -race this proves the shared chain states are safe, and all
// answers must match their memo-off twins exactly.
func TestMemoRoutingAndDistributionConcurrent(t *testing.T) {
	sys := memoTestSystem(t)
	paths, departs := memoWorkload(t, sys)

	src := VertexID(sys.Graph.NumVertices() / 3)
	var dst VertexID = -1
	dists := sys.Graph.ShortestDistances(src, graph.FreeFlowWeight)
	best := 0.0
	for v, d := range dists {
		if VertexID(v) != src && d > best && d < 500 {
			best = d
			dst = VertexID(v)
		}
	}
	if dst < 0 {
		t.Skip("no reachable routing destination")
	}
	budget := best * 2

	sys.EnableConvMemo(0)
	wantRoute, err := sys.Route(src, dst, departs[0], budget, OD)
	if err != nil {
		t.Fatal(err)
	}
	wantDist := make([][]float64, len(paths))
	for i, p := range paths {
		res, err := sys.PathDistribution(p, departs[0], OD)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range res.Dist.Buckets() {
			wantDist[i] = append(wantDist[i], b.Lo, b.Hi, b.Pr)
		}
	}

	sys.EnableConvMemo(8192)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				res, err := sys.Route(src, dst, departs[0], budget, OD)
				if err != nil {
					errs <- err.Error()
					return
				}
				if !res.Path.Equal(wantRoute.Path) || res.Prob != wantRoute.Prob {
					errs <- "concurrent Route diverged from memo-off result"
				}
				return
			}
			for i, p := range paths {
				res, err := sys.PathDistribution(p, departs[0], OD)
				if err != nil {
					errs <- err.Error()
					return
				}
				var flat []float64
				for _, b := range res.Dist.Buckets() {
					flat = append(flat, b.Lo, b.Hi, b.Pr)
				}
				if len(flat) != len(wantDist[i]) {
					errs <- "concurrent PathDistribution bucket count diverged"
					return
				}
				for j := range flat {
					if flat[j] != wantDist[i][j] {
						errs <- "concurrent PathDistribution diverged from memo-off result"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
