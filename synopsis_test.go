package pathcost

import (
	"bytes"
	"testing"
)

// End-to-end synopsis flow over the public API: train, build a
// synopsis from a workload sample, persist model+synopsis, load into
// a fresh system, and verify the loaded system answers byte-for-byte
// like the training process — with the synopsis actually being hit.
func TestSynopsisSaveLoadEndToEnd(t *testing.T) {
	params := DefaultParams()
	params.Beta = 20
	params.MaxRank = 4
	sys, err := Synthesize(SynthesizeConfig{Preset: "test", Trips: 3000, Seed: 31, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	workload, err := sys.SyntheticWorkload(128, 8, 7, []float64{8 * 3600, 17 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := sys.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Len() == 0 {
		t.Fatal("empty synopsis from a prefix-heavy workload")
	}
	rep := syn.Report()
	if rep.SavedSteps == 0 || rep.TotalSteps < rep.SavedSteps {
		t.Fatalf("implausible selection report: %+v", rep)
	}

	var buf bytes.Buffer
	if err := sys.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSystem(sys.Graph, nil, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st, ok := loaded.SynopsisStats()
	if !ok {
		t.Fatal("loaded system has no synopsis attached")
	}
	if st.Entries != syn.Len() || st.Bytes != syn.Bytes() {
		t.Fatalf("loaded synopsis %d entries/%d bytes, want %d/%d",
			st.Entries, st.Bytes, syn.Len(), syn.Bytes())
	}

	// Reference answers from a synopsis-free, memo-free system.
	sys.AttachSynopsis(nil)
	for _, q := range workload {
		want, err := sys.PathDistribution(q.Path, q.Depart, OD)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.PathDistribution(q.Path, q.Depart, OD)
		if err != nil {
			t.Fatal(err)
		}
		wb, gb := want.Dist.Buckets(), got.Dist.Buckets()
		if len(wb) != len(gb) {
			t.Fatalf("bucket counts differ on %v", q.Path)
		}
		for i := range wb {
			if wb[i] != gb[i] {
				t.Fatalf("loaded synopsis answer differs at bucket %d on %v", i, q.Path)
			}
		}
	}
	if st, _ := loaded.SynopsisStats(); st.Hits == 0 {
		t.Fatalf("workload replay never hit the loaded synopsis: %+v", st)
	}

	// Detaching removes it from queries and stats alike.
	loaded.AttachSynopsis(nil)
	if _, ok := loaded.SynopsisStats(); ok {
		t.Fatal("stats still report a synopsis after detach")
	}
}

// Routing through a synopsis-backed system must return the same route
// as the synopsis-free system, while probing the store.
func TestSynopsisRoutingEquivalence(t *testing.T) {
	params := DefaultParams()
	params.Beta = 20
	params.MaxRank = 4
	sys, err := Synthesize(SynthesizeConfig{Preset: "test", Trips: 3000, Seed: 31, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	// Route once without any acceleration to fix the reference.
	src := VertexID(3)
	var dst VertexID = -1
	for v := sys.Graph.NumVertices() - 1; v > 0; v-- {
		if VertexID(v) != src {
			if _, _, err := sys.Router().FastestPath(src, VertexID(v)); err == nil {
				dst = VertexID(v)
				break
			}
		}
	}
	if dst < 0 {
		t.Skip("no reachable destination")
	}
	_, ff, err := sys.Router().FastestPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	budget := 2 * ff
	want, err := sys.Route(src, dst, 8*3600, budget, OD)
	if err != nil {
		t.Fatal(err)
	}

	// Synopsis over the reference route's prefixes: the DFS re-walks
	// them, so probes must hit.
	var workload []WorkloadQuery
	for n := 2; n <= len(want.Path); n++ {
		workload = append(workload, WorkloadQuery{Path: want.Path[:n], Depart: 8 * 3600})
	}
	if _, err := sys.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 64}); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Route(src, dst, 8*3600, budget, OD)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Path.Equal(want.Path) || got.Prob != want.Prob {
		t.Fatalf("synopsis-backed route differs: %v p=%v vs %v p=%v",
			got.Path, got.Prob, want.Path, want.Prob)
	}
	if st, _ := sys.SynopsisStats(); st.Hits == 0 {
		t.Fatalf("routing DFS never hit the synopsis: %+v", st)
	}
}
