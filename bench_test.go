package pathcost

// Benchmarks: one per table/figure of the paper's evaluation (run via
// go test -bench=Fig -benchmem) plus micro-benchmarks of the core
// operations. The figure benchmarks execute the same experiment code
// that cmd/experiments uses, on a reduced workload, so `-bench .`
// regenerates every figure's computation under the Go benchmark
// harness; cmd/experiments prints the full-size tables.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/hist"
	"repro/internal/routing"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		cfg := experiments.Tiny()
		cfg.Trips = 6000
		cfg.PathsPerPoint = 8
		benchEnv = experiments.NewEnv(cfg)
	})
	return benchEnv
}

func benchFigure(b *testing.B, id string) {
	e := benchEnvironment(b)
	// Warm the hybrid-graph caches outside the timed region.
	if _, err := experiments.Run(e, id); err != nil {
		b.Fatalf("figure %s: %v", id, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(e, id); err != nil {
			b.Fatalf("figure %s: %v", id, err)
		}
	}
}

// One benchmark per evaluation figure (Section 5).

func BenchmarkFig03Sparseness(b *testing.B)   { benchFigure(b, "3") }
func BenchmarkFig04Independence(b *testing.B) { benchFigure(b, "4") }
func BenchmarkFig05AutoBuckets(b *testing.B)  { benchFigure(b, "5") }
func BenchmarkFig08Alpha(b *testing.B)        { benchFigure(b, "8") }
func BenchmarkFig09Beta(b *testing.B)         { benchFigure(b, "9") }
func BenchmarkFig10DatasetSize(b *testing.B)  { benchFigure(b, "10") }
func BenchmarkFig11Histograms(b *testing.B)   { benchFigure(b, "11") }
func BenchmarkFig12Memory(b *testing.B)       { benchFigure(b, "12") }
func BenchmarkFig13Shapes(b *testing.B)       { benchFigure(b, "13") }
func BenchmarkFig14Accuracy(b *testing.B)     { benchFigure(b, "14") }
func BenchmarkFig15Entropy(b *testing.B)      { benchFigure(b, "15") }
func BenchmarkFig16Efficiency(b *testing.B)   { benchFigure(b, "16") }
func BenchmarkFig17Breakdown(b *testing.B)    { benchFigure(b, "17") }
func BenchmarkFig18Routing(b *testing.B)      { benchFigure(b, "18") }

// Table 2 has no computation — it is the parameter grid driving the
// sweeps above (α in Fig08, β in Fig09, |P| in Fig14–16).

// --- Micro-benchmarks of the building blocks ---

func benchHybrid(b *testing.B) (*experiments.Env, *core.HybridGraph) {
	b.Helper()
	e := benchEnvironment(b)
	h, err := e.Hybrid(e.Params(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return e, h
}

// BenchmarkTrainHybridGraph measures full weight instantiation
// (Section 3): rank-1 histograms plus bottom-up joint growth.
func BenchmarkTrainHybridGraph(b *testing.B) {
	e := benchEnvironment(b)
	params := e.Params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(e.G, e.Data(), params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostDistribution measures one full path query per method.
func BenchmarkCostDistribution(b *testing.B) {
	e, h := benchHybrid(b)
	rnd := rand.New(rand.NewSource(1))
	var paths []graph.Path
	for len(paths) < 16 {
		start := graph.EdgeID(rnd.Intn(e.G.NumEdges()))
		if p := e.G.RandomWalkPath(start, 20, rnd.Intn); p != nil {
			paths = append(paths, p)
		}
	}
	for _, m := range []core.Method{core.MethodOD, core.MethodHP, core.MethodLB} {
		b.Run(string(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := paths[i%len(paths)]
				if _, err := h.CostDistribution(p, 8*3600, core.QueryOptions{Method: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalExtend measures the "path + another edge" step
// used by routing (Section 4.3).
func BenchmarkIncrementalExtend(b *testing.B) {
	e, h := benchHybrid(b)
	rnd := rand.New(rand.NewSource(2))
	var p graph.Path
	for p == nil {
		start := graph.EdgeID(rnd.Intn(e.G.NumEdges()))
		p = e.G.RandomWalkPath(start, 12, rnd.Intn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := h.StartPath(p[0], 8*3600, core.QueryOptions{Method: core.MethodOD})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range p[1:] {
			st, err = h.ExtendPath(st, e)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkVOptimal measures the histogram DP on a 300-sample raw
// distribution.
func BenchmarkVOptimal(b *testing.B) {
	rnd := rand.New(rand.NewSource(3))
	samples := make([]float64, 300)
	for i := range samples {
		if i%2 == 0 {
			samples[i] = float64(int(60 + rnd.NormFloat64()*5))
		} else {
			samples[i] = float64(int(120 + rnd.NormFloat64()*9))
		}
	}
	raw, err := hist.NewRaw(samples, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hist.VOptimal(raw, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoHistogram measures the f-fold cross-validated bucket
// selection (Section 3.1).
func BenchmarkAutoHistogram(b *testing.B) {
	rnd := rand.New(rand.NewSource(4))
	samples := make([]float64, 300)
	for i := range samples {
		samples[i] = float64(int(90 + rnd.NormFloat64()*20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hist.AutoHistogram(samples, 1, hist.DefaultAutoConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvolve measures one histogram convolution (the LB step).
func BenchmarkConvolve(b *testing.B) {
	x := hist.MustFromBuckets([]hist.Bucket{
		{Lo: 10, Hi: 20, Pr: 0.3}, {Lo: 20, Hi: 40, Pr: 0.4}, {Lo: 40, Hi: 45, Pr: 0.3},
	})
	y := hist.MustFromBuckets([]hist.Bucket{
		{Lo: 5, Hi: 15, Pr: 0.5}, {Lo: 15, Hi: 30, Pr: 0.5},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist.Convolve(x, y)
	}
}

// BenchmarkCoarsestDecomposition measures Algorithm 1 alone (the OI
// step of Figure 17).
func BenchmarkCoarsestDecomposition(b *testing.B) {
	e, h := benchHybrid(b)
	rnd := rand.New(rand.NewSource(5))
	var p graph.Path
	for p == nil {
		start := graph.EdgeID(rnd.Intn(e.G.NumEdges()))
		p = e.G.RandomWalkPath(start, 30, rnd.Intn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ca, err := h.BuildCandidateArray(p, 8*3600)
		if err != nil {
			b.Fatal(err)
		}
		ca.CoarsestDecomposition(0)
	}
}

// BenchmarkRoutingQuery measures one full stochastic budget query.
func BenchmarkRoutingQuery(b *testing.B) {
	e, h := benchHybrid(b)
	r := routing.New(h)
	src := graph.VertexID(10)
	dists := e.G.ShortestDistances(src, graph.FreeFlowWeight)
	var dst graph.VertexID = -1
	best := 0.0
	for v, d := range dists {
		if graph.VertexID(v) != src && d > best && d < 400 {
			best = d
			dst = graph.VertexID(v)
		}
	}
	if dst < 0 {
		b.Skip("no destination")
	}
	for _, m := range []core.Method{core.MethodOD, core.MethodLB} {
		b.Run(string(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := r.BestPath(routing.Query{
					Source: src, Dest: dst, Depart: 8 * 3600, Budget: best * 2,
				}, routing.Options{Method: m, Incremental: true, MaxExpansions: 2000})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMapMatchPipeline is defined in the mapmatch package tests;
// the end-to-end GPS pipeline cost is dominated by Viterbi decoding.
