package pathcost

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gps"
)

// epochBase trains a system on the first `keep` trajectories of a
// synthesized workload and returns it with the held-out remainder —
// the raw material for incremental-vs-retrain comparisons.
func epochBase(t testing.TB, seed int64, trips, keep int) (*System, []*Matched, *Graph, Params) {
	t.Helper()
	params := DefaultParams()
	params.Beta = 15
	params.MaxRank = 4
	full, err := Synthesize(SynthesizeConfig{Preset: "test", Trips: trips, Seed: seed, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	data := full.Data()
	if keep >= data.Len() {
		t.Fatalf("keep %d >= collection size %d", keep, data.Len())
	}
	var base, held []*Matched
	for i := 0; i < data.Len(); i++ {
		if i < keep {
			base = append(base, data.Traj(i))
		} else {
			held = append(held, data.Traj(i))
		}
	}
	sys, err := NewSystem(full.Graph, gps.NewCollection(base, 0), params)
	if err != nil {
		t.Fatal(err)
	}
	return sys, held, full.Graph, params
}

// modelBytes serializes a system's model for byte-exact comparison.
func modelBytes(t testing.TB, s *System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The tentpole guarantee: folding held-out trajectories in through N
// random incremental epoch publishes (decay off) yields a model
// byte-identical to retraining from scratch on the concatenated data.
func TestEpochIncrementalMatchesFullRetrain(t *testing.T) {
	sys, held, g, params := epochBase(t, 101, 1200, 900)

	// Feed the held-out tail in randomly sized batches, in order (the
	// stream arrives in order; batch boundaries are what vary).
	rnd := rand.New(rand.NewSource(7))
	startSeq := sys.Epoch()
	var publishes uint64
	for len(held) > 0 {
		n := 1 + rnd.Intn(len(held))
		st, err := sys.ApplyDeltas(held[:n])
		if err != nil {
			t.Fatalf("ApplyDeltas(%d): %v", n, err)
		}
		held = held[n:]
		publishes++
		if st.Seq != startSeq+publishes {
			t.Fatalf("epoch seq %d after %d publishes from %d", st.Seq, publishes, startSeq)
		}
		if st.LastTrajs != n {
			t.Fatalf("publish folded %d trajectories, staged %d", st.LastTrajs, n)
		}
	}

	// Reference: full retrain on the identical concatenated stream.
	fullData := sys.Data()
	trajs := make([]*Matched, fullData.Len())
	for i := range trajs {
		trajs[i] = fullData.Traj(i)
	}
	ref, err := NewSystem(g, gps.NewCollection(trajs, 0), params)
	if err != nil {
		t.Fatal(err)
	}

	got, want := modelBytes(t, sys), modelBytes(t, ref)
	if !bytes.Equal(got, want) {
		t.Fatalf("incremental model (%d bytes) differs from full retrain (%d bytes) after %d publishes",
			len(got), len(want), publishes)
	}
}

// Decay mode cannot be byte-identical by design; it must stay a valid
// probability model that absorbs the new mass, and untouched
// variables must be untouched (copy-on-write shares them by pointer).
func TestEpochDecayStaysNormalized(t *testing.T) {
	sys, held, _, _ := epochBase(t, 103, 1000, 800)
	sys.SetDecayHalflife(time.Hour)

	before := sys.Hybrid()
	if _, err := sys.ApplyDeltas(held); err != nil {
		t.Fatalf("decay ApplyDeltas: %v", err)
	}
	if sys.Hybrid() == before {
		t.Fatal("decay publish did not produce a new hybrid")
	}
	st := sys.EpochStats()
	if st.LastDecayFactor <= 0 || st.LastDecayFactor > 1 {
		t.Fatalf("decay factor %v out of (0, 1]", st.LastDecayFactor)
	}

	// Every queryable dense path still answers with a normalized
	// distribution.
	dense := sys.DensePaths(2, 8)
	if len(dense) == 0 {
		t.Fatal("no dense paths in workload")
	}
	for _, dp := range dense[:min(5, len(dense))] {
		lo, _ := sys.Params.IntervalBounds(dp.Interval)
		res, err := sys.PathDistribution(dp.Path, lo+1, OD)
		if err != nil {
			t.Fatalf("query after decay publish: %v", err)
		}
		var total float64
		for _, b := range res.Dist.Buckets() {
			total += b.Pr
		}
		if math.Abs(total-1) > 1e-6 {
			t.Fatalf("distribution total %v after decay publish", total)
		}
	}
}

// Queries must keep serving — and serve only consistent epochs —
// while publishes run. Run under -race: the epoch swap, the staged
// buffer, the memo views and the query cache all get hammered at
// once. Consistency check: a result obtained concurrently with
// publishes is always byte-identical to re-asking the epoch it was
// served from.
func TestEpochConcurrentQueriesDuringPublish(t *testing.T) {
	sys, held, _, _ := epochBase(t, 107, 1000, 600)
	sys.EnableQueryCache(512)
	sys.EnableConvMemo(1024)
	sys.EnableBatchPlanner(2)

	dense := sys.DensePaths(3, 10)
	if len(dense) == 0 {
		t.Skip("no dense paths in workload")
	}
	paths := dense[:min(8, len(dense))]

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var queries atomic.Int64
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(w)))
			for ctx.Err() == nil {
				dp := paths[rnd.Intn(len(paths))]
				lo, _ := sys.Params.IntervalBounds(dp.Interval)
				if _, err := sys.PathDistribution(dp.Path, lo+1, OD); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				queries.Add(1)
			}
		}(w)
	}

	// Publisher: fold the held-out tail in small batches while the
	// query storm runs.
	for i := 0; i+20 <= len(held); i += 20 {
		if _, err := sys.ApplyDeltas(held[i : i+20]); err != nil {
			cancel()
			wg.Wait()
			t.Fatalf("publish %d: %v", i/20, err)
		}
	}
	cancel()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("query failed during publishing: %v", err)
	default:
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during publishing")
	}
	if sys.Epoch() < 2 {
		t.Fatalf("no epochs published (seq %d)", sys.Epoch())
	}
}

// Stale derived state must never cross an epoch boundary: with cache,
// memo and synopsis all hot, a query after a publish that touched the
// path must answer from the NEW model — byte-identical to a cold
// system retrained on the concatenated data — not from any cached
// artifact of the old epoch.
func TestEpochInvalidatesCachesAcrossPublish(t *testing.T) {
	sys, held, g, params := epochBase(t, 109, 1200, 900)
	sys.EnableQueryCache(512)
	sys.EnableConvMemo(1024)

	// A synopsis over a workload drawn from the dense paths, so the
	// store holds exactly the states a stale read would hit.
	dense := sys.DensePaths(3, 10)
	if len(dense) == 0 {
		t.Skip("no dense paths in workload")
	}
	var wl []WorkloadQuery
	for _, dp := range dense[:min(6, len(dense))] {
		lo, _ := sys.Params.IntervalBounds(dp.Interval)
		wl = append(wl, WorkloadQuery{Path: dp.Path, Depart: lo + 1})
	}
	if _, err := sys.BuildSynopsis(wl, SynopsisConfig{MaxEntries: 64}); err != nil {
		t.Fatalf("synopsis: %v", err)
	}

	// Warm every layer on the old epoch.
	for _, q := range wl {
		if _, err := sys.PathDistribution(q.Path, q.Depart, OD); err != nil {
			t.Fatalf("warm query: %v", err)
		}
	}

	if _, err := sys.ApplyDeltas(held); err != nil {
		t.Fatalf("publish: %v", err)
	}

	// Reference system, cold, on the concatenated data.
	fullData := sys.Data()
	trajs := make([]*Matched, fullData.Len())
	for i := range trajs {
		trajs[i] = fullData.Traj(i)
	}
	ref, err := NewSystem(g, gps.NewCollection(trajs, 0), params)
	if err != nil {
		t.Fatal(err)
	}

	for _, q := range wl {
		got, err := sys.PathDistribution(q.Path, q.Depart, OD)
		if err != nil {
			t.Fatalf("post-publish query: %v", err)
		}
		want, err := ref.PathDistribution(q.Path, q.Depart, OD)
		if err != nil {
			t.Fatalf("reference query: %v", err)
		}
		gb, wb := got.Dist.Buckets(), want.Dist.Buckets()
		if len(gb) != len(wb) {
			t.Fatalf("path %v: %d buckets vs reference %d — stale state served", q.Path, len(gb), len(wb))
		}
		for i := range gb {
			if gb[i] != wb[i] {
				t.Fatalf("path %v bucket %d: %+v vs reference %+v — stale state served",
					q.Path, i, gb[i], wb[i])
			}
		}
	}
}

// Staging validates; publish restores the staged batch on failure.
func TestStageTrajectoriesRejectsInvalid(t *testing.T) {
	sys, held, _, _ := epochBase(t, 113, 600, 500)
	bad := &Matched{ID: 999, Path: Path{EdgeID(0), EdgeID(0)}, Depart: 0, EdgeCosts: []float64{1, 1}}
	accepted, rejected := sys.StageTrajectories([]*Matched{held[0], nil, bad})
	if accepted != 1 || rejected != 2 {
		t.Fatalf("accepted %d, rejected %d; want 1, 2", accepted, rejected)
	}
	if sys.StagedCount() != 1 {
		t.Fatalf("staged %d, want 1", sys.StagedCount())
	}
	if _, err := sys.PublishEpoch(); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if sys.StagedCount() != 0 {
		t.Fatalf("staged %d after publish, want 0", sys.StagedCount())
	}
}

// A publish with nothing staged must be a cheap no-op that does not
// advance the epoch.
func TestPublishEpochEmptyNoOp(t *testing.T) {
	sys, _, _, _ := epochBase(t, 127, 600, 500)
	seq := sys.Epoch()
	st, err := sys.PublishEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != seq || sys.Epoch() != seq {
		t.Fatalf("empty publish moved epoch %d → %d", seq, sys.Epoch())
	}
}
