// Command trajgen generates a synthetic road network and trajectory
// workload and writes both to disk, so experiments and services can
// reuse one workload instead of regenerating it.
//
// Usage:
//
//	trajgen -preset small -trips 25000 -seed 11 \
//	        -network net.txt -trajectories trips.txt [-emissions]
//	trajgen -preset small -trips 25000 -raw raw.txt -gps-noise 5
//
// The network file loads with netgen.ReadGraph, the trajectory file
// with gps.ReadCollection. With -raw, noisy unmatched GPS traces are
// also written (loads with gps.ReadRaw) so the full map-matching
// ingestion pipeline can be exercised from files.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/gps"
	"repro/internal/netgen"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

func main() {
	preset := flag.String("preset", "small", "network preset: test, small, aalborg, beijing")
	trips := flag.Int("trips", 25000, "number of trajectories")
	seed := flag.Int64("seed", 1, "workload seed")
	emissions := flag.Bool("emissions", false, "also simulate GHG costs")
	netOut := flag.String("network", "network.txt", "output file for the road network")
	trajOut := flag.String("trajectories", "trajectories.txt", "output file for the matched trajectories")
	rawOut := flag.String("raw", "", "also write noisy raw GPS traces to this file")
	gpsNoise := flag.Float64("gps-noise", 5, "GPS noise std dev in meters (with -raw)")
	sampling := flag.Float64("sampling", 3, "GPS sampling interval in seconds (with -raw)")
	flag.Parse()
	if *rawOut != "" && (*gpsNoise <= 0 || *sampling <= 0) {
		// trajgen.Config treats zero as "use the package default", so an
		// explicit 0 would silently become 8 m / 5 s; reject it instead.
		fatal(fmt.Errorf("-gps-noise and -sampling must be > 0 (got %g, %g)", *gpsNoise, *sampling))
	}

	start := time.Now()
	g := netgen.Generate(netgen.PresetConfig(netgen.Preset(*preset)))
	fmt.Printf("network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	gen := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: *seed, NumTrips: *trips, WithEmissions: *emissions,
		EmitGPS: *rawOut != "", SamplingIntervalS: *sampling, GPSNoiseM: *gpsNoise,
	})
	res := gen.Generate()
	fmt.Printf("workload: %d trajectories (~%d GPS records) in %v\n",
		res.Collection.Len(), res.Collection.Records(), time.Since(start).Round(time.Millisecond))

	nf, err := os.Create(*netOut)
	if err != nil {
		fatal(err)
	}
	defer nf.Close()
	if err := netgen.WriteGraph(nf, g); err != nil {
		fatal(err)
	}
	tf, err := os.Create(*trajOut)
	if err != nil {
		fatal(err)
	}
	defer tf.Close()
	if err := gps.WriteCollection(tf, res.Collection); err != nil {
		fatal(err)
	}
	if *rawOut != "" {
		rf, err := os.Create(*rawOut)
		if err != nil {
			fatal(err)
		}
		defer rf.Close()
		if err := gps.WriteRaw(rf, res.Raw); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %s and %s\n", *netOut, *trajOut)
	if *rawOut != "" {
		fmt.Printf("wrote %d raw GPS traces to %s\n", len(res.Raw), *rawOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trajgen:", err)
	os.Exit(1)
}
