// Command trajgen generates a synthetic road network and trajectory
// workload and writes both to disk, so experiments and services can
// reuse one workload instead of regenerating it.
//
// Usage:
//
//	trajgen -preset small -trips 25000 -seed 11 \
//	        -network net.txt -trajectories trips.txt [-emissions]
//
// The network file loads with netgen.ReadGraph, the trajectory file
// with gps.ReadCollection.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/gps"
	"repro/internal/netgen"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

func main() {
	preset := flag.String("preset", "small", "network preset: test, small, aalborg, beijing")
	trips := flag.Int("trips", 25000, "number of trajectories")
	seed := flag.Int64("seed", 1, "workload seed")
	emissions := flag.Bool("emissions", false, "also simulate GHG costs")
	netOut := flag.String("network", "network.txt", "output file for the road network")
	trajOut := flag.String("trajectories", "trajectories.txt", "output file for the matched trajectories")
	flag.Parse()

	start := time.Now()
	g := netgen.Generate(netgen.PresetConfig(netgen.Preset(*preset)))
	fmt.Printf("network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	gen := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: *seed, NumTrips: *trips, WithEmissions: *emissions,
	})
	res := gen.Generate()
	fmt.Printf("workload: %d trajectories (~%d GPS records) in %v\n",
		res.Collection.Len(), res.Collection.Records(), time.Since(start).Round(time.Millisecond))

	nf, err := os.Create(*netOut)
	if err != nil {
		fatal(err)
	}
	defer nf.Close()
	if err := netgen.WriteGraph(nf, g); err != nil {
		fatal(err)
	}
	tf, err := os.Create(*trajOut)
	if err != nil {
		fatal(err)
	}
	defer tf.Close()
	if err := gps.WriteCollection(tf, res.Collection); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", *netOut, *trajOut)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trajgen:", err)
	os.Exit(1)
}
