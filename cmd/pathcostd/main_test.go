package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	pathcost "repro"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

// TestRunSIGHUPPublishesEpoch drives the daemon's run loop end to
// end: boot on port 0, stream a raw-GPS batch through /v1/ingest,
// deliver a SIGHUP, and watch /v1/stats report the next epoch — with
// queries serving throughout — then shut down cleanly.
func TestRunSIGHUPPublishesEpoch(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full daemon")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	hup := make(chan os.Signal, 1)
	type ready struct {
		addr net.Addr
		sys  *pathcost.System
	}
	readyc := make(chan ready, 1)
	done := make(chan error, 1)

	opt := options{
		addr:          "127.0.0.1:0",
		preset:        "test",
		trips:         2000,
		seed:          31,
		beta:          20,
		alpha:         30,
		cacheSize:     256,
		memoSize:      256,
		planWorkers:   2,
		useSynopsis:   true,
		drain:         time.Second,
		enableIngest:  true,
		ingestWorkers: 2,
	}
	logger := log.New(io.Discard, "", 0)
	go func() {
		done <- run(ctx, opt, logger, hup, func(a net.Addr, s *pathcost.System) {
			readyc <- ready{addr: a, sys: s}
		})
	}()

	var rd ready
	select {
	case rd = <-readyc:
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + rd.addr.String()

	// Raw traces over the served graph, streamed in as a fleet would.
	res := trajgen.New(rd.sys.Graph, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: 43, NumTrips: 20, EmitGPS: true,
	}).Generate()
	type pointJSON struct {
		Lat float64 `json:"lat"`
		Lon float64 `json:"lon"`
		T   float64 `json:"t"`
	}
	type trajJSON struct {
		ID     int64       `json:"id"`
		Points []pointJSON `json:"points"`
	}
	var ingReq struct {
		Trajectories []trajJSON `json:"trajectories"`
	}
	for _, tr := range res.Raw {
		tj := trajJSON{ID: tr.ID}
		for _, rec := range tr.Records {
			tj.Points = append(tj.Points, pointJSON{Lat: rec.Pt.Lat, Lon: rec.Pt.Lon, T: rec.Time})
		}
		ingReq.Trajectories = append(ingReq.Trajectories, tj)
	}
	body, err := json.Marshal(ingReq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ing struct {
		Staged int    `json:"staged"`
		Epoch  uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || ing.Staged == 0 {
		t.Fatalf("ingest: status %d, staged %d", resp.StatusCode, ing.Staged)
	}
	if ing.Epoch != 1 {
		t.Fatalf("ingest published by itself: epoch %d", ing.Epoch)
	}

	// SIGHUP = force publish now.
	hup <- syscall.SIGHUP

	deadline := time.Now().Add(30 * time.Second)
	var seq uint64
	for time.Now().Before(deadline) {
		seq = statsEpoch(t, base)
		if seq >= 2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if seq < 2 {
		t.Fatalf("epoch never advanced past %d after SIGHUP", seq)
	}

	// Queries still serve on the new epoch.
	hr, err := http.Get(base + "/healthz")
	if err != nil || hr.StatusCode != 200 {
		t.Fatalf("healthz after publish: %v / %v", err, hr)
	}
	hr.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// statsEpoch polls /v1/stats for the served epoch sequence.
func statsEpoch(t *testing.T, base string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Epoch *struct {
			Seq uint64 `json:"seq"`
		} `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch == nil {
		t.Fatal("stats missing epoch block")
	}
	return st.Epoch.Seq
}

// TestRunRejectsBadFlags covers the option validation path without
// booting a server.
func TestRunRejectsBadFlags(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := run(ctx, options{modelFile: "m.txt"}, logger, nil, nil)
	if err == nil {
		t.Fatal("run accepted -model without -network")
	}
	if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error")
	}
}
