package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	pathcost "repro"
	"repro/internal/netgen"
	"repro/internal/shard"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

// TestRunMultiShardE2E boots the full sharded deployment through the
// daemon's own run loop, files and all: train, split three ways, write
// network + partition + shard models to disk, start three shard
// daemons on port 0 (shard 0 with ingestion in decay mode), start a
// coordinator daemon over them, then prove the tier serves — a
// cross-region query answers, a raw-GPS batch ingested into shard 0
// publishes a new epoch on SIGHUP that the coordinator's /v1/stats
// observes, queries still serve on the new epoch, and /metrics is
// scrape-able — before everything drains cleanly.
func TestRunMultiShardE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("boots four daemons")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logger := log.New(io.Discard, "", 0)

	// Train once, split three ways, persist the deployment files.
	params := pathcost.DefaultParams()
	params.Beta = 20
	params.MaxRank = 4
	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
		Preset: "test", Trips: 3000, Seed: 11, Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	part, err := shard.NewPartition(sys.Graph, 3, sys.Params)
	if err != nil {
		t.Fatal(err)
	}
	split, err := shard.SplitModel(sys, part)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	networkFile := filepath.Join(dir, "net.txt")
	partitionFile := filepath.Join(dir, "shards.partition")
	writeFile := func(name string, write func(io.Writer) error) string {
		t.Helper()
		f, err := os.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return name
	}
	writeFile(networkFile, func(w io.Writer) error { return netgen.WriteGraph(w, sys.Graph) })
	writeFile(partitionFile, part.Write)

	// One daemon per shard, each serving its region's model file.
	type daemon struct {
		base string
		hup  chan os.Signal
		done chan error
	}
	var shardBases []string
	var daemons []daemon
	for r, ss := range split.Shards {
		model := writeFile(filepath.Join(dir, fmt.Sprintf("shard%d.model", r)), ss.SaveModel)
		opt := options{
			addr:        "127.0.0.1:0",
			networkFile: networkFile,
			modelFile:   model,
			cacheSize:   256,
			memoSize:    256,
			planWorkers: 2,
			useSynopsis: true,
			drain:       time.Second,
		}
		if r == 0 {
			// A file-loaded model has no trajectory collection, so
			// streaming maintenance must run in decay mode.
			opt.enableIngest = true
			opt.ingestWorkers = 2
			opt.decayHalflife = time.Hour
		}
		d := daemon{hup: make(chan os.Signal, 1), done: make(chan error, 1)}
		readyc := make(chan net.Addr, 1)
		go func(opt options, d daemon) {
			d.done <- run(ctx, opt, logger, d.hup, func(a net.Addr, _ *pathcost.System) { readyc <- a })
		}(opt, d)
		select {
		case a := <-readyc:
			d.base = "http://" + a.String()
		case err := <-d.done:
			t.Fatalf("shard %d exited before ready: %v", r, err)
		case <-time.After(60 * time.Second):
			t.Fatalf("shard %d never became ready", r)
		}
		shardBases = append(shardBases, d.base)
		daemons = append(daemons, d)
	}

	// The coordinator daemon over the fleet, also through run().
	coordOpt := options{
		addr:          "127.0.0.1:0",
		coordinator:   true,
		networkFile:   networkFile,
		partitionFile: partitionFile,
		shards:        strings.Join(shardBases, ","),
		hedgeAfter:    150 * time.Millisecond,
		probeInterval: 500 * time.Millisecond,
		shardTimeout:  10 * time.Second,
		drain:         time.Second,
	}
	coord := daemon{done: make(chan error, 1)}
	readyc := make(chan net.Addr, 1)
	go func() {
		coord.done <- run(ctx, coordOpt, logger, nil, func(a net.Addr, _ *pathcost.System) { readyc <- a })
	}()
	select {
	case a := <-readyc:
		coord.base = "http://" + a.String()
	case err := <-coord.done:
		t.Fatalf("coordinator exited before ready: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator never became ready")
	}

	// A cross-region distribution must answer through the relay.
	p := crossRegionQueryPath(t, sys, part)
	queryBody, err := json.Marshal(map[string]any{"path": p, "depart": 8 * 3600.0})
	if err != nil {
		t.Fatal(err)
	}
	postOK := func(url string) {
		t.Helper()
		resp, err := http.Post(url, "application/json", bytes.NewReader(queryBody))
		if err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s = %d: %s", url, resp.StatusCode, body)
		}
		var dist struct {
			Buckets []struct {
				P float64 `json:"p"`
			} `json:"buckets"`
		}
		if err := json.Unmarshal(body, &dist); err != nil || len(dist.Buckets) == 0 {
			t.Fatalf("cross-region answer malformed (%v): %s", err, body)
		}
	}
	postOK(coord.base + "/v1/distribution")

	// Stream raw GPS into shard 0 and force an epoch publish with the
	// daemon's SIGHUP channel; the coordinator's stats must see the
	// shard's epoch advance.
	daemons[0].hup <- syscall.SIGHUP // nothing staged: must be a no-op
	before := coordShardEpoch(t, coord.base, 0)
	ingestRaw(t, daemons[0].base, sys.Graph)
	daemons[0].hup <- syscall.SIGHUP
	deadline := time.Now().Add(30 * time.Second)
	for {
		if e := coordShardEpoch(t, coord.base, 0); e > before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never observed shard 0 advancing past epoch %d", before)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The tier still serves on the new epoch, and the coordinator's
	// /metrics scrape reflects the served traffic.
	postOK(coord.base + "/v1/distribution")
	resp, err := http.Get(coord.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator /metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"pathcost_coordinator_requests_served_total",
		`pathcost_coordinator_shard_healthy{region="0"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}

	// Everything drains on cancel.
	cancel()
	for i, d := range append(daemons, coord) {
		select {
		case err := <-d.done:
			if err != nil {
				t.Errorf("daemon %d returned %v", i, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("daemon %d did not shut down", i)
		}
	}
}

// crossRegionQueryPath samples query paths until one crosses a region
// cut, so the coordinator must exercise its relay.
func crossRegionQueryPath(t *testing.T, sys *pathcost.System, part *shard.Partition) []int64 {
	t.Helper()
	rnd := rand.New(rand.NewSource(7))
	for range 300 {
		p, err := sys.RandomQueryPath(2+rnd.Intn(8), rnd.Intn)
		if err != nil {
			t.Fatal(err)
		}
		if len(part.SegmentPath(sys.Graph, p)) > 1 {
			ids := make([]int64, len(p))
			for i, e := range p {
				ids[i] = int64(e)
			}
			return ids
		}
	}
	t.Fatal("no cross-region query path in 300 samples")
	return nil
}

// coordShardEpoch reads one shard's served epoch from the
// coordinator's /v1/stats (0 when the shard reports none).
func coordShardEpoch(t *testing.T, base string, region int) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Shards []struct {
			Region int     `json:"region"`
			Epoch  *uint64 `json:"epoch"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	for _, ss := range st.Shards {
		if ss.Region == region && ss.Epoch != nil {
			return *ss.Epoch
		}
	}
	return 0
}

// ingestRaw streams a raw-GPS batch into base's /v1/ingest.
func ingestRaw(t *testing.T, base string, g *pathcost.Graph) {
	t.Helper()
	res := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: 43, NumTrips: 20, EmitGPS: true,
	}).Generate()
	type pointJSON struct {
		Lat float64 `json:"lat"`
		Lon float64 `json:"lon"`
		T   float64 `json:"t"`
	}
	type trajJSON struct {
		ID     int64       `json:"id"`
		Points []pointJSON `json:"points"`
	}
	var req struct {
		Trajectories []trajJSON `json:"trajectories"`
	}
	for _, tr := range res.Raw {
		tj := trajJSON{ID: tr.ID}
		for _, rec := range tr.Records {
			tj.Points = append(tj.Points, pointJSON{Lat: rec.Pt.Lat, Lon: rec.Pt.Lon, T: rec.Time})
		}
		req.Trajectories = append(req.Trajectories, tj)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ingBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var ing struct {
		Staged int `json:"staged"`
	}
	if err := json.Unmarshal(ingBody, &ing); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ing.Staged == 0 {
		t.Fatalf("ingest = %d, staged %d: %s", resp.StatusCode, ing.Staged, ingBody)
	}
}

// TestRunRejectsBadCoordinatorFlags covers coordinator-mode option
// validation without booting anything.
func TestRunRejectsBadCoordinatorFlags(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cases := []struct {
		name string
		opt  options
		want string
	}{
		{"missing network+partition", options{coordinator: true, shards: "http://127.0.0.1:1"},
			"-network and -partition"},
		{"missing shards", options{coordinator: true, networkFile: "net.txt", partitionFile: "p.txt"},
			"-shards"},
	}
	for _, tc := range cases {
		err := run(ctx, tc.opt, logger, nil, nil)
		if err == nil {
			t.Errorf("%s: run accepted the flags", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q, want substring %q", tc.name, err, tc.want)
		}
	}
}
