// Command pathcostd is the serving daemon: it loads (or synthesizes)
// a trained hybrid-graph model once and answers path cost-distribution
// and stochastic routing queries over an HTTP JSON API — the
// train-once/serve-many deployment shape the paper's economics imply,
// extended with streaming maintenance: raw GPS batches POSTed to
// /v1/ingest are map-matched and staged, and a periodic epoch publish
// folds them into the served model incrementally without blocking
// queries.
//
// Serve a synthesized city (no files needed):
//
//	pathcostd -preset small -trips 20000 -addr :8080
//
// Serve a trained model (see cmd/pathcost -save-model), with
// streaming ingestion publishing a fresh epoch every 5 minutes:
//
//	pathcostd -network net.txt -model model.txt -addr :8080 \
//	  -ingest -epoch-interval 5m
//
// Query it:
//
//	curl -s localhost:8080/v1/distribution \
//	  -d '{"path":[12,13,14],"depart":28800,"method":"OD","budget":600}'
//	curl -s localhost:8080/v1/route \
//	  -d '{"source":3,"dest":41,"depart":28800,"budget":900}'
//	curl -s localhost:8080/v1/batch \
//	  -d '{"queries":[{"kind":"distribution","path":[12,13],"depart":28800},
//	                  {"kind":"route","source":3,"dest":41,"depart":28800,"budget":900}]}'
//	curl -s localhost:8080/v1/ingest \
//	  -d '{"trajectories":[{"id":7,"points":[{"lat":57.01,"lon":9.99,"t":28800},...]}]}'
//	curl -s localhost:8080/v1/stats
//
// See docs/API.md for the full endpoint reference.
//
// A model trained with a synopsis (cmd/pathcost -synopsis N
// -save-model ...) boots warm: its pre-materialized sub-path states
// load with the model and answer their queries with zero convolutions
// from the first request (disable with -synopsis=false). Epoch
// publishes carry the synopsis forward, rebuilding only the entries
// the delta touched.
//
// Incremental maintenance: with -epoch-interval > 0 a timer publishes
// a new model epoch whenever deltas are staged. -decay-halflife
// selects the maintenance mode — 0 (default) rebuilds touched
// variables exactly (byte-identical to full retraining on the
// concatenated data); a positive halflife ages old observations by
// 2^(-Δt/halflife) instead, trading exactness for bounded memory and
// recency weighting (and is the only mode available when the model
// was loaded from a file without its trajectory collection).
//
// Signals: SIGHUP forces an epoch publish now (it no longer reloads
// -model from disk; staged deltas are the live update path).
// SIGINT/SIGTERM drain in-flight requests and exit.
//
// Profiling: -pprof <addr> exposes net/http/pprof on a separate
// listener (off by default) so the convolution hot paths can be
// profiled in production without touching the query port:
//
//	pathcostd -addr :8080 -pprof 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=15
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	pathcost "repro"
	"repro/internal/netgen"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
)

// options collects every knob of the daemon so the run loop is a
// plain testable function of its inputs.
type options struct {
	addr        string
	preset      string
	trips       int
	seed        int64
	beta, alpha int
	networkFile string
	modelFile   string
	cacheSize   int
	memoSize    int
	planWorkers int
	useSynopsis bool
	maxInFlight int
	maxQueue    int
	drain       time.Duration
	pprofAddr   string

	enableIngest  bool
	ingestWorkers int
	maxIngest     int
	epochInterval time.Duration
	decayHalflife time.Duration
	walDir        string
	walCheckpoint string

	defaultTimeout time.Duration

	// Coordinator mode: serve the API over a fleet of shards instead
	// of a local model.
	coordinator      bool
	shards           string
	partitionFile    string
	hedgeAfter       time.Duration
	probeInterval    time.Duration
	shardTimeout     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", ":8080", "listen address")
	flag.StringVar(&opt.preset, "preset", "small", "network preset when synthesizing: test, small, aalborg, beijing")
	flag.IntVar(&opt.trips, "trips", 20000, "simulated trajectories when synthesizing")
	flag.Int64Var(&opt.seed, "seed", 1, "workload seed when synthesizing")
	flag.IntVar(&opt.beta, "beta", 30, "qualified-trajectory threshold β (synthesized training)")
	flag.IntVar(&opt.alpha, "alpha", 30, "interval granularity α in minutes (synthesized training)")
	flag.StringVar(&opt.networkFile, "network", "", "road-network file (required with -model)")
	flag.StringVar(&opt.modelFile, "model", "", "trained model file to serve (requires -network)")
	flag.IntVar(&opt.cacheSize, "cache", 4096, "query-distribution cache capacity in entries (0 = disabled); cached answers are shared per departure α-interval")
	flag.IntVar(&opt.memoSize, "memo", 4096, "sub-path convolution memo capacity in prefix states (0 = disabled); exact — memoized answers are byte-identical")
	flag.IntVar(&opt.planWorkers, "plan-workers", runtime.NumCPU(), "batch-planner worker pool: /v1/batch plans its distribution entries as one unit so shared sub-paths are convolved once (0 = planner disabled); exact — planned answers are byte-identical")
	flag.BoolVar(&opt.useSynopsis, "synopsis", true, "serve the offline sub-path synopsis embedded in -model, when present (false drops it after load)")
	flag.IntVar(&opt.maxInFlight, "max-inflight", 0, "max concurrently evaluated queries (0 = default)")
	flag.IntVar(&opt.maxQueue, "max-queue", 0, "load shedding: max requests queued for an evaluation slot before new arrivals get 429 + Retry-After (0 = no shedding)")
	flag.DurationVar(&opt.drain, "drain", 10*time.Second, "graceful-shutdown drain timeout (0 = close immediately)")
	flag.BoolVar(&opt.coordinator, "coordinator", false, "serve as the sharded-tier coordinator over -shards instead of a local model (requires -network and -partition)")
	flag.StringVar(&opt.shards, "shards", "", "comma-separated shard base URLs, one per partition region in order; a region may be a pipe-separated replica group, e.g. http://a:8080|http://b:8080 (coordinator mode)")
	flag.StringVar(&opt.partitionFile, "partition", "", "region partition file written by cmd/pathcost -partition (coordinator mode)")
	flag.DurationVar(&opt.hedgeAfter, "hedge-after", 150*time.Millisecond, "race a second leg against a shard call slower than this (coordinator mode)")
	flag.DurationVar(&opt.probeInterval, "probe-interval", 2*time.Second, "per-shard /healthz probe spacing; negative disables (coordinator mode)")
	flag.DurationVar(&opt.shardTimeout, "shard-timeout", 10*time.Second, "per-leg shard call timeout (coordinator mode)")
	flag.IntVar(&opt.breakerThreshold, "breaker-threshold", 0, "consecutive leg failures that open a replica's circuit breaker (0 = 3, negative disables; coordinator mode)")
	flag.DurationVar(&opt.breakerCooldown, "breaker-cooldown", 0, "how long an open breaker deflects a replica's traffic before a half-open trial (0 = 1s; coordinator mode)")
	flag.DurationVar(&opt.defaultTimeout, "default-timeout", 0, "end-to-end deadline per query request; expiry answers 504, and clients tighten it per request with the X-Budget-Ms header (0 = unbounded)")
	flag.BoolVar(&opt.enableIngest, "ingest", false, "enable POST /v1/ingest: raw GPS batches are map-matched and staged for the next epoch publish")
	flag.IntVar(&opt.ingestWorkers, "ingest-workers", runtime.NumCPU(), "map-matching worker pool per ingest batch")
	flag.IntVar(&opt.maxIngest, "max-ingest-batch", 0, "max trajectories per /v1/ingest request (0 = default)")
	flag.DurationVar(&opt.epochInterval, "epoch-interval", 0, "publish a new model epoch this often when deltas are staged (0 = only on SIGHUP)")
	flag.DurationVar(&opt.decayHalflife, "decay-halflife", 0, "exponential time-decay halflife for epoch publishes (0 = exact incremental rebuild)")
	flag.StringVar(&opt.walDir, "wal", "", "ingest write-ahead log directory: staged batches are persisted before acknowledgment and replayed at boot, so a crash never loses acked trajectories")
	flag.StringVar(&opt.walCheckpoint, "wal-checkpoint", "", "model checkpoint file written after each epoch publish (temp + rename); a successful checkpoint lets the WAL truncate folded records (requires -wal)")
	flag.StringVar(&opt.pprofAddr, "pprof", "", "listen address for net/http/pprof and /metrics (e.g. 127.0.0.1:6060; empty = disabled)")
	flag.Parse()

	logger := log.New(os.Stderr, "pathcostd: ", log.LstdFlags)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)

	if err := run(ctx, opt, logger, hup, nil); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("drained and stopped")
}

// run is the daemon's whole serve loop as a testable function: build
// the system, bind the listener, start the epoch loop, serve until
// ctx ends. hup delivers force-publish requests (wired to SIGHUP by
// main, to a plain channel by tests; nil disables). onReady, when
// non-nil, is called with the bound address and the served system
// once the listener is up — tests bind port 0 and discover both here.
func run(ctx context.Context, opt options, logger *log.Logger, hup <-chan os.Signal, onReady func(net.Addr, *pathcost.System)) error {
	if opt.coordinator {
		return runCoordinator(ctx, opt, logger, onReady)
	}
	sys, err := buildSystem(opt, logger)
	if err != nil {
		return err
	}
	if opt.cacheSize > 0 {
		sys.EnableQueryCache(opt.cacheSize)
	}
	if opt.memoSize > 0 {
		sys.EnableConvMemo(opt.memoSize)
	}
	if opt.planWorkers > 0 {
		sys.EnableBatchPlanner(opt.planWorkers)
	}
	sys.SetDecayHalflife(opt.decayHalflife)

	if opt.walCheckpoint != "" && opt.walDir == "" {
		return fmt.Errorf("-wal-checkpoint requires -wal")
	}
	if opt.walDir != "" {
		wlog, err := wal.Open(opt.walDir, wal.Options{})
		if err != nil {
			return err
		}
		defer wlog.Close()
		if opt.walCheckpoint != "" {
			sys.SetWALCheckpoint(func() error {
				return saveModelAtomic(sys, opt.walCheckpoint)
			})
		}
		rb, rt := sys.AttachWAL(wlog)
		if rt > 0 {
			logger.Printf("wal: replayed %d trajectories from %d batches in %s; they fold in at the next epoch publish", rt, rb, opt.walDir)
		} else {
			logger.Printf("wal: %s clean, nothing to replay", opt.walDir)
		}
	}

	st := sys.Stats()
	logger.Printf("serving %d vertices / %d edges, %d variables, coverage %.1f%% on %s",
		sys.Graph.NumVertices(), sys.Graph.NumEdges(), st.TotalVariables(), st.Coverage()*100, opt.addr)

	srv := server.New(sys, server.Config{
		MaxInFlight:    opt.maxInFlight,
		MaxQueue:       opt.maxQueue,
		EnableIngest:   opt.enableIngest,
		IngestWorkers:  opt.ingestWorkers,
		MaxIngestBatch: opt.maxIngest,
		DefaultTimeout: opt.defaultTimeout,
	})
	if opt.pprofAddr != "" {
		go servePprof(opt.pprofAddr, logger, srv.Metrics())
	}

	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	if onReady != nil {
		onReady(ln.Addr(), sys)
	}

	go epochLoop(ctx, sys, opt.epochInterval, hup, logger)

	return srv.RunListener(ctx, ln, opt.drain)
}

// runCoordinator is run's coordinator-mode body: no model is loaded —
// only the network and its region partition — and every query is
// answered by decomposing it over the shard fleet. The coordinator
// serves /metrics on its main mux (it has no evaluation hot path to
// protect), and -pprof still opens the usual debug listener.
func runCoordinator(ctx context.Context, opt options, logger *log.Logger, onReady func(net.Addr, *pathcost.System)) error {
	if opt.networkFile == "" || opt.partitionFile == "" {
		return fmt.Errorf("-coordinator requires -network and -partition")
	}
	var bases []string
	for _, s := range strings.Split(opt.shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			bases = append(bases, s)
		}
	}
	if len(bases) == 0 {
		return fmt.Errorf("-coordinator requires -shards (comma-separated base URLs, one per region)")
	}
	nf, err := os.Open(opt.networkFile)
	if err != nil {
		return err
	}
	g, err := netgen.ReadGraph(nf)
	nf.Close()
	if err != nil {
		return err
	}
	pf, err := os.Open(opt.partitionFile)
	if err != nil {
		return err
	}
	part, err := shard.ReadPartition(pf, g)
	pf.Close()
	if err != nil {
		return err
	}
	coord, err := shard.New(g, part, shard.Config{
		Shards:           bases,
		MaxInFlight:      opt.maxInFlight,
		MaxQueue:         opt.maxQueue,
		Timeout:          opt.shardTimeout,
		HedgeAfter:       opt.hedgeAfter,
		ProbeInterval:    opt.probeInterval,
		BreakerThreshold: opt.breakerThreshold,
		BreakerCooldown:  opt.breakerCooldown,
		DefaultTimeout:   opt.defaultTimeout,
	})
	if err != nil {
		return err
	}
	if opt.pprofAddr != "" {
		go servePprof(opt.pprofAddr, logger, nil)
	}
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	if onReady != nil {
		onReady(ln.Addr(), nil)
	}
	logger.Printf("coordinating %d shards over %d vertices / %d regions on %s",
		len(bases), g.NumVertices(), part.K, opt.addr)
	return coord.RunListener(ctx, ln, opt.drain)
}

// epochLoop publishes staged deltas into new model epochs: on a timer
// when interval > 0, and immediately on every hup delivery (SIGHUP in
// production). Publishing with nothing staged is skipped — the served
// epoch only advances when there is something to fold in. A failed
// publish keeps the deltas staged and the old epoch serving.
func epochLoop(ctx context.Context, sys *pathcost.System, interval time.Duration, hup <-chan os.Signal, logger *log.Logger) {
	var tick <-chan time.Time
	if interval > 0 {
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}
	publish := func(trigger string) {
		if sys.StagedCount() == 0 {
			if trigger == "SIGHUP" {
				logger.Printf("SIGHUP: nothing staged, epoch unchanged")
			}
			return
		}
		st, err := sys.PublishEpoch()
		if err != nil {
			logger.Printf("%s: epoch publish failed, deltas retained: %v", trigger, err)
			return
		}
		logger.Printf("%s: published epoch %d: %d trajectories folded, %d vars touched (%d rebuilt, %d new) in %dms",
			trigger, st.Seq, st.LastTrajs, st.LastTouchedVars, st.LastRebuiltVars, st.LastNewVars, st.LastBuildMS)
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
			publish("epoch timer")
		case _, ok := <-hup:
			if !ok {
				return
			}
			publish("SIGHUP")
		}
	}
}

// servePprof runs the profiling endpoints — and, when a metrics
// handler is given, the Prometheus /metrics scrape — on their own
// listener and mux: never the query listener, and never the default
// mux, so the debug surface cannot leak onto the serving port and
// scrapers never compete with queries for the serving socket.
func servePprof(addr string, logger *log.Logger, metrics http.Handler) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if metrics != nil {
		mux.Handle("/metrics", metrics)
	}
	logger.Printf("pprof listening on %s", addr)
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: server.ServeReadHeaderTimeout,
		IdleTimeout:       server.ServeIdleTimeout,
	}
	if err := srv.ListenAndServe(); err != nil {
		logger.Printf("pprof listener failed: %v", err)
	}
}

// saveModelAtomic persists the served model with the temp-file +
// rename dance: the checkpoint path either holds the complete previous
// model or the complete new one, never a torn write — exactly what WAL
// truncation relies on.
func saveModelAtomic(sys *pathcost.System, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".checkpoint-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := sys.SaveModel(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// buildSystem loads network+model from files, or synthesizes a city
// and trains on it. A synopsis section embedded in the model file is
// served when opt.useSynopsis is true and dropped otherwise.
func buildSystem(opt options, logger *log.Logger) (*pathcost.System, error) {
	if opt.modelFile != "" && opt.networkFile == "" {
		return nil, fmt.Errorf("-model requires -network")
	}
	if opt.networkFile != "" && opt.modelFile == "" {
		return nil, fmt.Errorf("-network requires -model (train with cmd/pathcost -save-model first)")
	}
	if opt.modelFile == "" {
		params := pathcost.DefaultParams()
		params.Beta = opt.beta
		params.AlphaMinutes = opt.alpha
		logger.Printf("synthesizing %s city with %d trips (seed %d) and training...", opt.preset, opt.trips, opt.seed)
		t0 := time.Now()
		sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
			Preset: opt.preset, Trips: opt.trips, Seed: opt.seed, Params: params,
		})
		if err != nil {
			return nil, err
		}
		logger.Printf("trained in %v", time.Since(t0).Round(time.Millisecond))
		return sys, nil
	}
	nf, err := os.Open(opt.networkFile)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	g, err := netgen.ReadGraph(nf)
	if err != nil {
		return nil, err
	}
	mf, err := os.Open(opt.modelFile)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	sys, err := pathcost.LoadSystem(g, nil, mf)
	if err != nil {
		return nil, err
	}
	if st, ok := sys.SynopsisStats(); ok {
		if opt.useSynopsis {
			logger.Printf("synopsis loaded: %d pre-materialized sub-paths (%d bytes)", st.Entries, st.Bytes)
		} else {
			sys.AttachSynopsis(nil)
			logger.Printf("synopsis present in %s but dropped (-synopsis=false)", opt.modelFile)
		}
	}
	return sys, nil
}
