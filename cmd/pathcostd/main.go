// Command pathcostd is the serving daemon: it loads (or synthesizes)
// a trained hybrid-graph model once and answers path cost-distribution
// and stochastic routing queries over an HTTP JSON API — the
// train-once/serve-many deployment shape the paper's economics imply.
//
// Serve a synthesized city (no files needed):
//
//	pathcostd -preset small -trips 20000 -addr :8080
//
// Serve a trained model (see cmd/pathcost -save-model):
//
//	pathcostd -network net.txt -model model.txt -addr :8080
//
// Query it:
//
//	curl -s localhost:8080/v1/distribution \
//	  -d '{"path":[12,13,14],"depart":28800,"method":"OD","budget":600}'
//	curl -s localhost:8080/v1/route \
//	  -d '{"source":3,"dest":41,"depart":28800,"budget":900}'
//	curl -s localhost:8080/v1/batch \
//	  -d '{"queries":[{"kind":"distribution","path":[12,13],"depart":28800},
//	                  {"kind":"route","source":3,"dest":41,"depart":28800,"budget":900}]}'
//	curl -s localhost:8080/v1/stats
//
// See docs/API.md for the full endpoint reference.
//
// A model trained with a synopsis (cmd/pathcost -synopsis N
// -save-model ...) boots warm: its pre-materialized sub-path states
// load with the model and answer their queries with zero convolutions
// from the first request (disable with -synopsis=false).
//
// Signals: SIGHUP re-reads -model from disk and hot-swaps it without
// dropping requests (ignored in synthesized mode), re-applying the
// -synopsis choice to the fresh model; SIGINT/SIGTERM drain in-flight
// requests and exit.
//
// Profiling: -pprof <addr> exposes net/http/pprof on a separate
// listener (off by default) so the convolution hot paths can be
// profiled in production without touching the query port:
//
//	pathcostd -addr :8080 -pprof 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=15
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	pathcost "repro"
	"repro/internal/netgen"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	preset := flag.String("preset", "small", "network preset when synthesizing: test, small, aalborg, beijing")
	trips := flag.Int("trips", 20000, "simulated trajectories when synthesizing")
	seed := flag.Int64("seed", 1, "workload seed when synthesizing")
	beta := flag.Int("beta", 30, "qualified-trajectory threshold β (synthesized training)")
	alpha := flag.Int("alpha", 30, "interval granularity α in minutes (synthesized training)")
	networkFile := flag.String("network", "", "road-network file (required with -model)")
	modelFile := flag.String("model", "", "trained model file to serve (requires -network)")
	cacheSize := flag.Int("cache", 4096, "query-distribution cache capacity in entries (0 = disabled); cached answers are shared per departure α-interval")
	memoSize := flag.Int("memo", 4096, "sub-path convolution memo capacity in prefix states (0 = disabled); exact — memoized answers are byte-identical")
	planWorkers := flag.Int("plan-workers", runtime.NumCPU(), "batch-planner worker pool: /v1/batch plans its distribution entries as one unit so shared sub-paths are convolved once (0 = planner disabled); exact — planned answers are byte-identical")
	useSynopsis := flag.Bool("synopsis", true, "serve the offline sub-path synopsis embedded in -model, when present (false drops it after load)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently evaluated queries (0 = default)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout (0 = close immediately)")
	pprofAddr := flag.String("pprof", "", "listen address for net/http/pprof (e.g. 127.0.0.1:6060; empty = disabled)")
	flag.Parse()

	logger := log.New(os.Stderr, "pathcostd: ", log.LstdFlags)

	if *pprofAddr != "" {
		go servePprof(*pprofAddr, logger)
	}

	sys, err := buildSystem(*preset, *trips, *seed, *beta, *alpha, *networkFile, *modelFile, *useSynopsis, logger)
	if err != nil {
		logger.Fatal(err)
	}
	if *cacheSize > 0 {
		sys.EnableQueryCache(*cacheSize)
	}
	if *memoSize > 0 {
		sys.EnableConvMemo(*memoSize)
	}
	if *planWorkers > 0 {
		sys.EnableBatchPlanner(*planWorkers)
	}
	st := sys.Stats()
	logger.Printf("serving %d vertices / %d edges, %d variables, coverage %.1f%% on %s",
		sys.Graph.NumVertices(), sys.Graph.NumEdges(), st.TotalVariables(), st.Coverage()*100, *addr)

	srv := server.New(sys, server.Config{MaxInFlight: *maxInFlight})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *modelFile == "" {
				logger.Printf("SIGHUP ignored: serving a synthesized model (no -model file to reload)")
				continue
			}
			next, err := buildSystem(*preset, *trips, *seed, *beta, *alpha, *networkFile, *modelFile, *useSynopsis, logger)
			if err != nil {
				logger.Printf("SIGHUP reload failed, keeping current model: %v", err)
				continue
			}
			if *cacheSize > 0 {
				next.EnableQueryCache(*cacheSize)
			}
			if *memoSize > 0 {
				next.EnableConvMemo(*memoSize)
			}
			if *planWorkers > 0 {
				next.EnableBatchPlanner(*planWorkers)
			}
			srv.Swap(next)
			logger.Printf("SIGHUP: reloaded model from %s (%d variables)",
				*modelFile, next.Stats().TotalVariables())
		}
	}()

	if err := srv.Run(ctx, *addr, *drain); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("drained and stopped")
}

// servePprof runs the profiling endpoints on their own listener and
// mux — never the query listener, and never the default mux, so the
// debug surface cannot leak onto the serving port.
func servePprof(addr string, logger *log.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Printf("pprof listening on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Printf("pprof listener failed: %v", err)
	}
}

// buildSystem loads network+model from files, or synthesizes a city
// and trains on it. A synopsis section embedded in the model file is
// served when useSynopsis is true and dropped otherwise; either way a
// SIGHUP reload re-applies the same choice to the fresh model.
func buildSystem(preset string, trips int, seed int64, beta, alpha int,
	networkFile, modelFile string, useSynopsis bool, logger *log.Logger) (*pathcost.System, error) {
	if modelFile != "" && networkFile == "" {
		return nil, fmt.Errorf("-model requires -network")
	}
	if networkFile != "" && modelFile == "" {
		return nil, fmt.Errorf("-network requires -model (train with cmd/pathcost -save-model first)")
	}
	if modelFile == "" {
		params := pathcost.DefaultParams()
		params.Beta = beta
		params.AlphaMinutes = alpha
		logger.Printf("synthesizing %s city with %d trips (seed %d) and training...", preset, trips, seed)
		t0 := time.Now()
		sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
			Preset: preset, Trips: trips, Seed: seed, Params: params,
		})
		if err != nil {
			return nil, err
		}
		logger.Printf("trained in %v", time.Since(t0).Round(time.Millisecond))
		return sys, nil
	}
	nf, err := os.Open(networkFile)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	g, err := netgen.ReadGraph(nf)
	if err != nil {
		return nil, err
	}
	mf, err := os.Open(modelFile)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	sys, err := pathcost.LoadSystem(g, nil, mf)
	if err != nil {
		return nil, err
	}
	if st, ok := sys.SynopsisStats(); ok {
		if useSynopsis {
			logger.Printf("synopsis loaded: %d pre-materialized sub-paths (%d bytes)", st.Entries, st.Bytes)
		} else {
			sys.AttachSynopsis(nil)
			logger.Printf("synopsis present in %s but dropped (-synopsis=false)", modelFile)
		}
	}
	return sys, nil
}
