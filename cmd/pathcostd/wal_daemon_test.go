package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	pathcost "repro"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

// daemonHandle is one booted run() loop plus the plumbing to stop it.
type daemonHandle struct {
	base   string
	sys    *pathcost.System
	hup    chan os.Signal
	cancel context.CancelFunc
	done   chan error
}

// bootDaemon starts run() on port 0 and waits for ready.
func bootDaemon(t *testing.T, opt options) *daemonHandle {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	h := &daemonHandle{
		hup:    make(chan os.Signal, 1),
		cancel: cancel,
		done:   make(chan error, 1),
	}
	type ready struct {
		addr net.Addr
		sys  *pathcost.System
	}
	readyc := make(chan ready, 1)
	logger := log.New(io.Discard, "", 0)
	go func() {
		h.done <- run(ctx, opt, logger, h.hup, func(a net.Addr, s *pathcost.System) {
			readyc <- ready{addr: a, sys: s}
		})
	}()
	select {
	case rd := <-readyc:
		h.base = "http://" + rd.addr.String()
		h.sys = rd.sys
	case err := <-h.done:
		cancel()
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(60 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return h
}

func (h *daemonHandle) stop(t *testing.T) {
	t.Helper()
	h.cancel()
	select {
	case err := <-h.done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// ingestBodies renders n disjoint raw-GPS ingest request bodies over g.
func ingestBodies(t *testing.T, g *pathcost.Graph, n int, seed int64) [][]byte {
	t.Helper()
	type pointJSON struct {
		Lat float64 `json:"lat"`
		Lon float64 `json:"lon"`
		T   float64 `json:"t"`
	}
	type trajJSON struct {
		ID     int64       `json:"id"`
		Points []pointJSON `json:"points"`
	}
	var out [][]byte
	for i := 0; i < n; i++ {
		res := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
			Seed: seed + int64(i), NumTrips: 10, EmitGPS: true,
		}).Generate()
		var req struct {
			Trajectories []trajJSON `json:"trajectories"`
		}
		for _, tr := range res.Raw {
			tj := trajJSON{ID: tr.ID + int64(i)*100000}
			for _, rec := range tr.Records {
				tj.Points = append(tj.Points, pointJSON{Lat: rec.Pt.Lat, Lon: rec.Pt.Lon, T: rec.Time})
			}
			req.Trajectories = append(req.Trajectories, tj)
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, body)
	}
	return out
}

// postIngest streams one body through /v1/ingest and returns staged.
func postIngest(t *testing.T, base string, body []byte) int {
	t.Helper()
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ing struct {
		Staged int `json:"staged"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	return ing.Staged
}

// statsWAL polls the /v1/stats wal block.
func statsWAL(t *testing.T, base string) (lastSeq, checkpoint uint64, ok bool) {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		WAL *struct {
			LastSeq    uint64 `json:"last_seq"`
			Checkpoint uint64 `json:"checkpoint"`
		} `json:"wal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.WAL == nil {
		return 0, 0, false
	}
	return st.WAL.LastSeq, st.WAL.Checkpoint, true
}

// TestRunWALRecoveryAndCheckpoint drives the durability loop end to
// end at the daemon level: boot with -wal and -wal-checkpoint, ack an
// ingest batch, stop WITHOUT publishing (the "crash" — acked deltas
// exist only in the log), reboot on the same directory, and verify the
// backlog was replayed, a SIGHUP publish folds it in, the checkpoint
// file appears, and the WAL reports the truncation frontier.
func TestRunWALRecoveryAndCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two full daemons")
	}
	dir := t.TempDir()
	opt := options{
		addr:          "127.0.0.1:0",
		preset:        "test",
		trips:         2000,
		seed:          31,
		beta:          20,
		alpha:         30,
		useSynopsis:   true,
		drain:         time.Second,
		enableIngest:  true,
		ingestWorkers: 2,
		walDir:        filepath.Join(dir, "wal"),
		walCheckpoint: filepath.Join(dir, "model.ckpt"),
	}

	h := bootDaemon(t, opt)
	bodies := ingestBodies(t, h.sys.Graph, 1, 43)
	if staged := postIngest(t, h.base, bodies[0]); staged == 0 {
		t.Fatal("nothing staged")
	}
	lastSeq, ckpt, ok := statsWAL(t, h.base)
	if !ok || lastSeq == 0 {
		t.Fatalf("wal stats after ingest: last_seq %d, present %v", lastSeq, ok)
	}
	if ckpt != 0 {
		t.Fatalf("wal checkpoint %d advanced without a publish", ckpt)
	}
	h.stop(t) // acked deltas now live only in the WAL

	h = bootDaemon(t, opt)
	defer h.stop(t)
	if n := h.sys.StagedCount(); n == 0 {
		t.Fatal("reboot replayed nothing: staged count 0")
	}
	h.hup <- syscall.SIGHUP
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if statsEpoch(t, h.base) >= 2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if seq := statsEpoch(t, h.base); seq < 2 {
		t.Fatalf("epoch never advanced after replayed publish: %d", seq)
	}
	if _, err := os.Stat(opt.walCheckpoint); err != nil {
		t.Fatalf("checkpoint file missing after publish: %v", err)
	}
	lastSeq, ckpt, ok = statsWAL(t, h.base)
	if !ok || ckpt == 0 || ckpt < lastSeq {
		t.Fatalf("wal did not truncate through the publish: last_seq %d, checkpoint %d", lastSeq, ckpt)
	}
}

// TestRunSIGHUPRacesIngest hammers the daemon with concurrent ingest
// streams and publish signals: every acked trajectory must eventually
// be folded exactly once (staged_total conserved, staged_pending
// drained) with queries serving throughout. Run under -race this also
// checks the locking between the epoch loop and the WAL append path.
func TestRunSIGHUPRacesIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full daemon")
	}
	dir := t.TempDir()
	opt := options{
		addr:          "127.0.0.1:0",
		preset:        "test",
		trips:         2000,
		seed:          31,
		beta:          20,
		alpha:         30,
		useSynopsis:   true,
		drain:         time.Second,
		enableIngest:  true,
		ingestWorkers: 2,
		walDir:        filepath.Join(dir, "wal"),
		walCheckpoint: filepath.Join(dir, "model.ckpt"),
	}
	h := bootDaemon(t, opt)
	defer h.stop(t)

	const streams = 3
	bodies := ingestBodies(t, h.sys.Graph, streams, 91)
	var wg sync.WaitGroup
	acked := make([]int, streams)
	stopHup := make(chan struct{})
	hupDone := make(chan struct{})
	go func() { // publish signals racing the ingest streams
		defer close(hupDone)
		for {
			select {
			case <-stopHup:
				return
			case <-time.After(5 * time.Millisecond):
				select {
				case h.hup <- syscall.SIGHUP:
				default:
				}
			}
		}
	}()
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acked[i] = postIngest(t, h.base, bodies[i])
		}(i)
	}
	wg.Wait()
	close(stopHup)
	<-hupDone

	total := 0
	for _, n := range acked {
		total += n
	}
	if total == 0 {
		t.Fatal("no trajectories acked")
	}

	// Drain: publish until nothing is pending.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if h.sys.StagedCount() == 0 {
			break
		}
		select {
		case h.hup <- syscall.SIGHUP:
		default:
		}
		time.Sleep(20 * time.Millisecond)
	}
	est := h.sys.EpochStats()
	if est.StagedPending != 0 {
		t.Fatalf("staged_pending %d after drain", est.StagedPending)
	}
	if est.StagedTotal != uint64(total) {
		t.Fatalf("staged_total %d, acked %d: trajectories lost or duplicated under racing publishes",
			est.StagedTotal, total)
	}
	hr, err := http.Get(h.base + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz during churn: %v / %v", err, hr)
	}
	hr.Body.Close()
}
