// Command pathcost is the interactive face of the library: it builds a
// synthetic city and trajectory workload, trains the hybrid graph, and
// answers path cost-distribution and stochastic routing queries.
//
// Usage:
//
//	pathcost -preset small -trips 20000 demo
//	pathcost -preset test -trips 5000 query -card 8 -hour 8
//	pathcost -preset test -trips 5000 route -budget-mult 2.0 -hour 8
//	pathcost -preset test -trips 5000 -batch 512 -workers 8
//	pathcost -preset test -trips 5000 -synopsis 512 synopsis
//	pathcost -preset test net-stats
//
// File-based workflows (see cmd/trajgen for producing the inputs):
//
//	pathcost -network net.txt -trajectories trips.txt -save-model model.txt demo
//	pathcost -network net.txt -trajectories trips.txt -synopsis 512 -save-model model.txt demo
//	pathcost -network net.txt -raw-gps raw.txt -workers 8 demo
//	pathcost -network net.txt -model model.txt query
//
// pathcost is the one-shot/training face; to keep a trained model
// resident and answer queries over HTTP, hand its -save-model output
// to the serving daemon (see cmd/pathcostd):
//
//	pathcostd -network net.txt -model model.txt -addr :8080
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	pathcost "repro"
	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/netgen"
	"repro/internal/shard"
)

func main() {
	preset := flag.String("preset", "small", "network preset: test, small, aalborg, beijing")
	trips := flag.Int("trips", 20000, "number of simulated trajectories")
	seed := flag.Int64("seed", 1, "workload seed")
	beta := flag.Int("beta", 30, "qualified-trajectory threshold β")
	alpha := flag.Int("alpha", 30, "interval granularity α in minutes")
	card := flag.Int("card", 8, "query path cardinality")
	hour := flag.Float64("hour", 8, "departure hour of day")
	budgetMult := flag.Float64("budget-mult", 2.0, "routing budget as a multiple of free-flow time")
	networkFile := flag.String("network", "", "load the road network from this file instead of generating one")
	trajFile := flag.String("trajectories", "", "load matched trajectories from this file instead of simulating")
	rawFile := flag.String("raw-gps", "", "load raw GPS traces from this file and map-match them (needs -network)")
	modelFile := flag.String("model", "", "load a trained model instead of training")
	saveModel := flag.String("save-model", "", "save the trained model to this file")
	workers := flag.Int("workers", runtime.NumCPU(), "goroutines for map matching and training (≤1 = sequential)")
	cacheSize := flag.Int("cache", 0, "query-distribution cache capacity in entries (0 = disabled)")
	memoSize := flag.Int("memo", 0, "sub-path convolution memo capacity in prefix states (0 = disabled)")
	batchN := flag.Int("batch", 0, "batch mode: run this many prefix-sharing queries independently and through the batch planner, verify identical results, report the speedup (overrides the command)")
	synSize := flag.Int("synopsis", 0, "offline sub-path synopsis entry budget (0 = disabled); built from a synthetic prefix-heavy workload and saved with -save-model")
	synBytes := flag.Int("synopsis-bytes", 0, "synopsis byte budget for the serialized entries (0 = unbounded)")
	synWorkload := flag.Int("synopsis-workload", 512, "workload-sample size used to train the synopsis")
	partitionK := flag.Int("partition", 0, "split the trained model into this many region shards for the sharded serving tier (0 = disabled)")
	partitionOut := flag.String("partition-out", "shards", "output prefix for -partition: writes <prefix>.partition, <prefix>-shard<R>.model and <prefix>-union.model")
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "demo"
	}
	if *batchN > 0 {
		cmd = "batch"
	}

	params := pathcost.DefaultParams()
	params.Beta = *beta
	params.AlphaMinutes = *alpha
	params.Workers = *workers

	start := time.Now()
	sys, err := buildSystem(*preset, *trips, *seed, params, *workers,
		*networkFile, *trajFile, *rawFile, *modelFile)
	if err != nil {
		fatal(err)
	}
	if *cacheSize > 0 {
		sys.EnableQueryCache(*cacheSize)
	}
	if *memoSize > 0 {
		sys.EnableConvMemo(*memoSize)
	}
	// Train the synopsis before -save-model so it ships in the file;
	// the synopsis command replays the same workload sample below.
	var synReplay []pathcost.WorkloadQuery
	if *synSize > 0 || cmd == "synopsis" {
		budget := *synSize
		if budget <= 0 {
			budget = 512
		}
		wl, err := buildSynopsis(sys, budget, *synBytes, *synWorkload, *card, *hour*3600, *seed)
		if err != nil {
			fatal(err)
		}
		synReplay = wl
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			fatal(err)
		}
		if err := sys.SaveModel(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s\n", *saveModel)
	}
	if *partitionK > 0 {
		if err := writePartition(sys, *partitionK, *partitionOut); err != nil {
			fatal(err)
		}
	}
	st := sys.Stats()
	fmt.Printf("trained in %v: %d vertices, %d edges, %d variables (by rank %v), coverage %.1f%%\n\n",
		time.Since(start).Round(time.Millisecond),
		sys.Graph.NumVertices(), sys.Graph.NumEdges(),
		st.TotalVariables(), st.VariablesByRank, st.Coverage()*100)

	depart := *hour * 3600
	switch cmd {
	case "demo":
		runQuery(sys, *card, depart)
		fmt.Println()
		runRoute(sys, depart, *budgetMult)
	case "query":
		runQuery(sys, *card, depart)
	case "route":
		runRoute(sys, depart, *budgetMult)
	case "net-stats":
		runNetStats(sys)
	case "batch":
		n := *batchN
		if n <= 0 {
			n = 256
		}
		runBatch(sys, n, *card, depart, *workers, *memoSize)
	case "synopsis":
		runSynopsis(sys, synReplay, *workers, *cacheSize > 0)
	default:
		fatal(fmt.Errorf("unknown command %q (want demo, query, route, net-stats, batch or synopsis)", cmd))
	}
	if st, ok := sys.QueryCacheStats(); ok {
		fmt.Printf("\nquery cache: %d/%d entries, %d hits, %d misses (%.0f%% hit rate), %d evictions\n",
			st.Entries, st.Capacity, st.Hits, st.Misses, st.HitRate()*100, st.Evictions)
	}
	if st, ok := sys.ConvMemoStats(); ok {
		fmt.Printf("conv memo: %d/%d prefix states, %d hits, %d misses (%.0f%% hit rate), %d evictions\n",
			st.Entries, st.Capacity, st.Hits, st.Misses, st.HitRate()*100, st.Evictions)
	}
	if st, ok := sys.SynopsisStats(); ok {
		fmt.Printf("synopsis: %d entries (%d bytes), %d hits, %d misses (%.0f%% hit rate)\n",
			st.Entries, st.Bytes, st.Hits, st.Misses, st.HitRate()*100)
	}
}

// buildSynopsis trains the offline synopsis on a synthetic
// prefix-heavy workload sample and attaches it to the system.
func buildSynopsis(sys *pathcost.System, entries, maxBytes, workloadN, card int, depart float64, seed int64) ([]pathcost.WorkloadQuery, error) {
	workload, err := sys.SyntheticWorkload(workloadN, card, seed+13, []float64{depart})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	syn, err := sys.BuildSynopsis(workload, pathcost.SynopsisConfig{
		MaxEntries: entries, MaxBytes: maxBytes,
	})
	if err != nil {
		return nil, err
	}
	rep := syn.Report()
	fmt.Printf("synopsis built in %v: %d/%d candidates selected from %d workload queries, %d bytes, %.0f%% of chain steps absorbed\n",
		time.Since(t0).Round(time.Millisecond), rep.Selected, rep.Candidates, rep.Queries, rep.Bytes,
		100*float64(rep.SavedSteps)/float64(rep.TotalSteps))
	return workload, nil
}

// runSynopsis is the offline-synopsis twin of runBatch: it answers
// the synopsis's training workload (a) with a cold convolution memo
// and (b) with the synopsis plus a cold memo — the cold-server-start
// comparison — verifying byte-identical results and reporting hit
// rate and speedup. The synopsis itself was built (and attached)
// before -save-model ran, so the persisted model carries it.
func runSynopsis(sys *pathcost.System, workload []pathcost.WorkloadQuery, workers int, hadCache bool) {
	if workers < 1 {
		workers = 1
	}
	syn := sys.Synopsis()
	if hadCache {
		// The α-interval query cache would serve the warm replay from
		// the cold replay's results and measure the cache, not the
		// synopsis; keep it out of the comparison.
		sys.EnableQueryCache(0)
		fmt.Println("synopsis: -cache disabled for the comparison (it would mask the synopsis)")
	}

	run := func() ([]*pathcost.QueryResult, time.Duration) {
		results := make([]*pathcost.QueryResult, len(workload))
		t0 := time.Now()
		var wg sync.WaitGroup
		idx := make(chan int, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					res, err := sys.PathDistribution(workload[i].Path, workload[i].Depart, pathcost.OD)
					if err != nil {
						fatal(err)
					}
					results[i] = res
				}
			}()
		}
		for i := range workload {
			idx <- i
		}
		close(idx)
		wg.Wait()
		return results, time.Since(t0)
	}

	fmt.Printf("synopsis: replaying %d workload queries with %d workers\n", len(workload), workers)
	sys.AttachSynopsis(nil)
	sys.EnableConvMemo(1 << 16) // fresh = cold memo
	cold, coldDur := run()
	sys.AttachSynopsis(syn)
	sys.EnableConvMemo(1 << 16) // fresh again: only the synopsis is warm
	warm, warmDur := run()

	identical := true
	for i := range cold {
		a, b := cold[i].Dist.Buckets(), warm[i].Dist.Buckets()
		if len(a) != len(b) {
			identical = false
			break
		}
		for j := range a {
			if a[j] != b[j] {
				identical = false
				break
			}
		}
	}
	st, _ := sys.SynopsisStats()
	fmt.Printf("  cold memo:     %v (%.0f queries/s)\n", coldDur.Round(time.Millisecond),
		float64(len(workload))/coldDur.Seconds())
	fmt.Printf("  warm synopsis: %v (%.0f queries/s), %.1fx faster\n", warmDur.Round(time.Millisecond),
		float64(len(workload))/warmDur.Seconds(), float64(coldDur)/float64(warmDur))
	fmt.Printf("  synopsis probes: %d hits, %d misses (%.0f%% hit rate)\n", st.Hits, st.Misses, st.HitRate()*100)
	fmt.Printf("  results byte-identical: %v\n", identical)
	if !identical {
		fatal(fmt.Errorf("synopsis-backed results diverged from cold evaluation"))
	}
}

// buildSystem assembles the System from files or by synthesis.
func buildSystem(preset string, trips int, seed int64, params pathcost.Params, workers int,
	networkFile, trajFile, rawFile, modelFile string) (*pathcost.System, error) {
	if trajFile != "" && rawFile != "" {
		return nil, fmt.Errorf("-trajectories and -raw-gps are mutually exclusive")
	}
	if networkFile == "" {
		if trajFile != "" || rawFile != "" || modelFile != "" {
			return nil, fmt.Errorf("-trajectories, -raw-gps and -model require -network")
		}
		fmt.Printf("building %s city with %d trips (seed %d)...\n", preset, trips, seed)
		return pathcost.Synthesize(pathcost.SynthesizeConfig{
			Preset: preset, Trips: trips, Seed: seed, Params: params,
		})
	}
	nf, err := os.Open(networkFile)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	g, err := netgen.ReadGraph(nf)
	if err != nil {
		return nil, err
	}
	var data *pathcost.Collection
	if trajFile != "" {
		tf, err := os.Open(trajFile)
		if err != nil {
			return nil, err
		}
		defer tf.Close()
		data, err = gps.ReadCollection(tf, g)
		if err != nil {
			return nil, err
		}
	}
	if rawFile != "" {
		rf, err := os.Open(rawFile)
		if err != nil {
			return nil, err
		}
		defer rf.Close()
		raw, err := gps.ReadRaw(rf)
		if err != nil {
			return nil, err
		}
		fmt.Printf("map matching %d raw traces from %s with %d workers...\n",
			len(raw), rawFile, workers)
		t0 := time.Now()
		matched, st, err := pathcost.MatchTrajectories(g, raw, pathcost.MatcherConfig{Workers: workers})
		if err != nil {
			return nil, err
		}
		fmt.Printf("matched %d/%d traces (%d records) in %v\n",
			st.Matched, st.Matched+st.Failed, st.Records, time.Since(t0).Round(time.Millisecond))
		data = matched
	}
	if modelFile != "" {
		mf, err := os.Open(modelFile)
		if err != nil {
			return nil, err
		}
		defer mf.Close()
		fmt.Printf("loading model %s...\n", modelFile)
		return pathcost.LoadSystem(g, data, mf)
	}
	if data == nil {
		return nil, fmt.Errorf("need -trajectories, -raw-gps or -model with -network")
	}
	fmt.Printf("training on %d trajectories with %d workers...\n", data.Len(), workers)
	return pathcost.NewSystem(g, data, params)
}

func runQuery(sys *pathcost.System, card int, depart float64) {
	rnd := rand.New(rand.NewSource(42))
	p, err := sys.RandomQueryPath(card, rnd.Intn)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query path %v departing %s\n", p, clock(depart))
	for _, m := range []pathcost.Method{pathcost.OD, pathcost.HP, pathcost.LB} {
		res, err := sys.PathDistribution(p, depart, m)
		if err != nil {
			fatal(err)
		}
		d := res.Dist
		fmt.Printf("  %-2s: mean %6.1fs  p10 %6.1fs  p90 %6.1fs  buckets %2d  decomp %d paths (max rank %d)  %.2fms\n",
			m, d.Mean(), d.Quantile(0.1), d.Quantile(0.9), d.NumBuckets(),
			res.Decomp.Cardinality(), res.Decomp.MaxRank(),
			float64(res.Timing.Total().Microseconds())/1000)
	}
}

func runRoute(sys *pathcost.System, depart, budgetMult float64) {
	// Pick a reachable pair with a meaningful distance.
	src := pathcost.VertexID(sys.Graph.NumVertices() / 3)
	dists := sys.Graph.ShortestDistances(src, graph.FreeFlowWeight)
	var dst pathcost.VertexID = -1
	best := 0.0
	for v, d := range dists {
		if pathcost.VertexID(v) != src && d > best && d < 900 {
			best = d
			dst = pathcost.VertexID(v)
		}
	}
	if dst < 0 {
		fatal(fmt.Errorf("no reachable destination from vertex %d", src))
	}
	budget := best * budgetMult
	fmt.Printf("route %d → %d departing %s, budget %.0fs (%.1f× free-flow)\n",
		src, dst, clock(depart), budget, budgetMult)
	for _, m := range []pathcost.Method{pathcost.OD, pathcost.LB} {
		t0 := time.Now()
		res, err := sys.Route(src, dst, depart, budget, m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-2s-DFS: P(arrive ≤ budget) = %.3f over %d edges; explored %d, pruned %d, %v\n",
			m, res.Prob, len(res.Path), res.Explored, res.Pruned, time.Since(t0).Round(time.Millisecond))
	}
}

// runBatch is the offline twin of the server's /v1/batch: it builds a
// prefix-sharing workload (queries from a few trunk paths, as a
// router exploring candidates from one source would produce), answers
// it once independently (each query evaluated in full, concurrently)
// and once through the batch planner (shared sub-path convolutions
// evaluated exactly once), verifies the two result sets are
// byte-identical, and reports the speedup plus the planner's sharing
// counters. Both runs keep the memo and cache off so the comparison
// isolates the planner.
func runBatch(sys *pathcost.System, n, card int, depart float64, workers, memoSize int) {
	if card < 2 {
		card = 2
	}
	if workers < 1 {
		workers = 1
	}
	rnd := rand.New(rand.NewSource(7))
	trunks := n / 16
	if trunks < 1 {
		trunks = 1
	}
	pool := make([]pathcost.Path, 0, trunks)
	for len(pool) < trunks {
		p, err := sys.RandomQueryPath(card, rnd.Intn)
		if err != nil {
			fatal(err)
		}
		pool = append(pool, p)
	}
	queries := make([]pathcost.PlanQuery, n)
	for i := range queries {
		trunk := pool[rnd.Intn(len(pool))]
		queries[i] = pathcost.PlanQuery{
			Path:   trunk[:2+rnd.Intn(len(trunk)-1)],
			Depart: depart,
		}
	}

	fmt.Printf("batch: %d distribution queries over %d trunk paths (≤%d edges), %d workers\n",
		n, trunks, card, workers)
	sys.EnableConvMemo(0)
	sys.EnableQueryCache(0)
	_ = memoSize // the planner comparison runs memo-free on both sides

	// Independent: every query evaluated in full, concurrently — what
	// /v1/batch did before planning existed.
	independent := make([]*pathcost.QueryResult, n)
	t0 := time.Now()
	var wg sync.WaitGroup
	idx := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := sys.PathDistribution(queries[i].Path, queries[i].Depart, pathcost.OD)
				if err != nil {
					fatal(err)
				}
				independent[i] = res
			}
		}()
	}
	for i := range queries {
		idx <- i
	}
	close(idx)
	wg.Wait()
	indepDur := time.Since(t0)

	// Planned: the whole batch through the prefix trie.
	sys.EnableBatchPlanner(workers)
	t0 = time.Now()
	planned, stats := sys.PlanDistributions(nil, queries, nil, nil)
	planDur := time.Since(t0)

	identical := true
	for i := range independent {
		if planned[i].Err != nil {
			fatal(planned[i].Err)
		}
		a, b := independent[i].Dist.Buckets(), planned[i].Res.Dist.Buckets()
		if len(a) != len(b) {
			identical = false
			break
		}
		for j := range a {
			if a[j] != b[j] {
				identical = false
				break
			}
		}
	}
	speedup := float64(indepDur) / float64(planDur)
	fmt.Printf("  independent: %v (%.0f queries/s)\n", indepDur.Round(time.Millisecond),
		float64(n)/indepDur.Seconds())
	fmt.Printf("  planned:     %v (%.0f queries/s), %.1fx faster\n", planDur.Round(time.Millisecond),
		float64(n)/planDur.Seconds(), speedup)
	fmt.Printf("  plan: %d unique sub-paths (%d shared) for %d chain steps independent evaluation needs; %d convolved, %d probe hits, %d steps saved\n",
		stats.Nodes, stats.SharedNodes, stats.IndependentSteps,
		stats.Convolutions, stats.ProbeHits, stats.SavedSteps())
	fmt.Printf("  results byte-identical: %v\n", identical)
	if !identical {
		fatal(fmt.Errorf("planned batch diverged from independent results"))
	}
}

func runNetStats(sys *pathcost.System) {
	classCount := make(map[string]int)
	var totalKm float64
	for _, e := range sys.Graph.Edges() {
		classCount[e.Class.String()]++
		totalKm += e.LengthM / 1000
	}
	fmt.Printf("network: %d vertices, %d directed edges, %.0f km total\n",
		sys.Graph.NumVertices(), sys.Graph.NumEdges(), totalKm)
	for c, n := range classCount {
		fmt.Printf("  %-12s %d\n", c, n)
	}
	fmt.Printf("trajectories: %d (≈%d raw GPS records)\n", sys.Data().Len(), sys.Data().Records())
}

func clock(t float64) string {
	h := int(t) / 3600 % 24
	m := int(t) / 60 % 60
	return fmt.Sprintf("%02d:%02d", h, m)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pathcost:", err)
	os.Exit(1)
}

// writePartition cuts the trained model into k region shards for the
// sharded serving tier: <prefix>.partition holds the vertex→region
// map (the coordinator's input), <prefix>-shard<R>.model each region's
// model slice (one pathcostd -model per shard), and
// <prefix>-union.model the single-process reference model the sharded
// deployment is byte-identical to.
func writePartition(sys *pathcost.System, k int, prefix string) error {
	part, err := shard.NewPartition(sys.Graph, k, sys.Params)
	if err != nil {
		return err
	}
	res, err := shard.SplitModel(sys, part)
	if err != nil {
		return err
	}
	writeFile := func(name string, write func(io.Writer) error) error {
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	pname := prefix + ".partition"
	if err := writeFile(pname, part.Write); err != nil {
		return err
	}
	for r, ss := range res.Shards {
		name := fmt.Sprintf("%s-shard%d.model", prefix, r)
		if err := writeFile(name, ss.SaveModel); err != nil {
			return err
		}
	}
	if err := writeFile(prefix+"-union.model", res.Union.SaveModel); err != nil {
		return err
	}
	fmt.Printf("partitioned into %d regions: %s + %d shard models + union reference (%d cross-region variables dropped, %d synopsis entries dropped)\n",
		k, pname, len(res.Shards), res.Dropped, res.DroppedSynopsis)
	return nil
}
