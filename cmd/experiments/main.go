// Command experiments regenerates the tables and figures of the
// paper's empirical study (Section 5) on the synthetic-city substitute
// workloads and prints them as aligned text tables.
//
// Usage:
//
//	experiments -city D1 -fig all
//	experiments -city both -fig 14,16,18
//	experiments -city tiny -fig 3          # fast smoke run
//	experiments -city D1 -trips 10000      # scale the workload down
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	city := flag.String("city", "D1", "workload: D1 (Aalborg-like), D2 (Beijing-like), tiny, or both")
	fig := flag.String("fig", "all", "comma-separated figure numbers (3,4,5,8..18) or 'all'")
	trips := flag.Int("trips", 0, "override the number of simulated trajectories")
	flag.Parse()

	var cfgs []experiments.Config
	switch strings.ToLower(*city) {
	case "d1":
		cfgs = []experiments.Config{experiments.D1()}
	case "d2":
		cfgs = []experiments.Config{experiments.D2()}
	case "both":
		cfgs = []experiments.Config{experiments.D1(), experiments.D2()}
	case "tiny":
		cfgs = []experiments.Config{experiments.Tiny()}
	default:
		fmt.Fprintf(os.Stderr, "unknown city %q\n", *city)
		os.Exit(2)
	}

	var ids []string
	if *fig == "all" {
		ids = experiments.IDs()
	} else {
		for _, f := range strings.Split(*fig, ",") {
			ids = append(ids, strings.TrimSpace(f))
		}
	}

	for _, cfg := range cfgs {
		if *trips > 0 {
			cfg.Trips = *trips
		}
		fmt.Printf("### workload %s: preset=%s trips=%d seed=%d\n",
			cfg.Name, cfg.Preset, cfg.Trips, cfg.Seed)
		start := time.Now()
		env := experiments.NewEnv(cfg)
		fmt.Printf("workload generated in %v (%d trajectories, ~%d GPS records)\n\n",
			time.Since(start).Round(time.Millisecond),
			env.Data().Len(), env.Data().Records())
		for _, id := range ids {
			t0 := time.Now()
			tab, err := experiments.Run(env, id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figure %s failed: %v\n", id, err)
				continue
			}
			fmt.Print(tab.Render())
			fmt.Printf("(computed in %v)\n\n", time.Since(t0).Round(time.Millisecond))
		}
	}
}
