package pathcost

import (
	"repro/internal/core"
)

// Cross-shard partial-state evaluation, re-exported for the serving
// tier: a coordinator decomposes a query path at region boundaries and
// relays (ChainState, TimeInterval) pairs shard to shard; each shard
// answers EvaluateSegment against its own model slice. See
// internal/core/partial.go for the byte-identity argument.
type (
	// ChainState is a serializable chain evaluation state.
	ChainState = core.ChainState
	// SegmentInput describes one segment of a partitioned query.
	SegmentInput = core.SegmentInput
	// SegmentResult is one segment's state, interval and shape.
	SegmentResult = core.SegmentResult
	// TimeInterval is an absolute-time interval (Eq. 3).
	TimeInterval = core.TimeInterval
)

// DecodeChainState parses a ChainState.Encode dump; pathLen bounds the
// open positions. Malformed input errors, never panics.
func DecodeChainState(data []byte, pathLen int) (*ChainState, error) {
	return core.DecodeChainState(data, pathLen)
}

// EvaluateSegment evaluates one segment of a partitioned query against
// the current epoch's model, synopsis and memo. First segments run the
// ordinary incremental evaluation (stores apply); continuations resume
// from the relayed state and never touch the stores. The query cache
// is bypassed: partial states are intermediate values keyed by relay
// context, not whole-query answers.
func (s *System) EvaluateSegment(in SegmentInput) (*SegmentResult, error) {
	ep := s.epoch.Load()
	return ep.Hybrid.EvaluateSegment(ep.Synopsis(), ep.memo.Load(), in)
}
