// Package pathcost is the public API of the reproduction of Dai,
// Yang, Guo, Jensen, Hu: "Path Cost Distribution Estimation Using
// Trajectory Data" (PVLDB 10(3), 2016).
//
// It estimates the full probability distribution — not just the mean —
// of the travel cost of any road-network path at a given departure
// time, from historical trajectories. The core idea is the paper's
// hybrid graph: weights are joint cost distributions attached to
// *paths* (multi-dimensional histograms capturing inter-edge
// dependence), and a query is answered by selecting the coarsest
// decomposition of the query path into weighted sub-paths and
// combining their joints via decomposable-model factorization.
//
// Typical use:
//
//	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
//		Preset: "small", Trips: 20000, Seed: 1,
//	})
//	res, err := sys.PathDistribution(path, 8*3600, pathcost.OD)
//	fmt.Println("P(≤ 10 min) =", res.Dist.ProbWithin(600))
//
// Real deployments would replace Synthesize with NewSystem over a road
// network and map-matched trajectories (see internal/mapmatch for the
// HMM matcher that turns raw GPS into such trajectories).
package pathcost

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/hist"
	"repro/internal/netgen"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

// Re-exported types so callers need only this package for common use.
type (
	// Graph is a directed road network.
	Graph = graph.Graph
	// Path is a sequence of adjacent edge IDs.
	Path = graph.Path
	// EdgeID identifies a road segment.
	EdgeID = graph.EdgeID
	// VertexID identifies an intersection.
	VertexID = graph.VertexID
	// Histogram is a one-dimensional cost distribution.
	Histogram = hist.Histogram
	// Params are the hybrid-graph parameters (α, β, MaxRank, ...).
	Params = core.Params
	// Method selects an estimation strategy.
	Method = core.Method
	// Collection is an indexed set of map-matched trajectories.
	Collection = gps.Collection
	// Matched is one map-matched trajectory observation.
	Matched = gps.Matched
	// QueryResult is a cost-distribution query outcome.
	QueryResult = core.QueryResult
	// RouteResult is a stochastic routing outcome.
	RouteResult = routing.Result
	// CacheStats reports query-cache effectiveness (see EnableQueryCache).
	CacheStats = cache.Stats
	// WorkloadQuery is one query-log observation used to train the
	// offline sub-path synopsis (see BuildSynopsis).
	WorkloadQuery = core.WorkloadQuery
	// SynopsisConfig tunes the synopsis selection pass.
	SynopsisConfig = core.SynopsisConfig
	// SynopsisStats reports synopsis size and probe effectiveness.
	SynopsisStats = core.SynopsisStats
	// QueryOptions selects method, rank cap and seed for one query.
	QueryOptions = core.QueryOptions
	// PlanQuery is one entry of a planned batch (see PlanDistributions).
	PlanQuery = core.PlanQuery
	// PlanResult is one planned entry's outcome.
	PlanResult = core.PlanResult
	// PlanStats instruments one planned batch.
	PlanStats = core.PlanStats
)

// Estimation methods (Section 5.2.2 of the paper).
const (
	// OD is the paper's proposal: the optimal (coarsest) decomposition.
	OD = core.MethodOD
	// RD uses a random decomposition.
	RD = core.MethodRD
	// HP uses pairwise joint distributions only.
	HP = core.MethodHP
	// LB is the legacy independent-edge convolution baseline.
	LB = core.MethodLB
)

// Cost domains: travel time in seconds (default) or GHG emissions in
// grams. Set Params.Domain before NewSystem/Synthesize.
const (
	DomainTime      = core.DomainTime
	DomainEmissions = core.DomainEmissions
)

// DefaultParams returns the paper's defaults (α = 30 min, β = 30).
func DefaultParams() Params { return core.DefaultParams() }

// System bundles a road network, a trajectory collection, the trained
// hybrid graph and a stochastic router.
//
// A System is safe for concurrent use: any number of goroutines may
// run PathDistribution, Route, TopKRoutes, GroundTruth and
// QueryCacheStats simultaneously, and EnableQueryCache and
// EnableConvMemo may be called while queries are in flight. The exported fields are treated as
// immutable after construction; to serve a newly trained model, build
// a new System and swap the pointer (see internal/server.Server.Swap)
// rather than mutating Hybrid or Router in place.
type System struct {
	Graph  *Graph
	Data   *Collection
	Hybrid *core.HybridGraph
	Router *routing.Router
	Params Params

	// qcache, when non-nil, memoizes PathDistribution results per
	// (path, α-interval, method). It is an atomic pointer so
	// EnableQueryCache can install, resize or remove the cache while
	// queries are running. See EnableQueryCache.
	qcache atomic.Pointer[cache.LRU[*QueryResult]]

	// flight collapses concurrent PathDistribution misses on one key
	// into a single CostDistribution computation (anti-stampede).
	flight cache.Flight[*QueryResult]

	// convMemo, when non-nil, is the incremental sub-path convolution
	// engine: a prefix-keyed memo of chain states shared between
	// PathDistribution and the Router, so queries that extend an
	// already-evaluated prefix cost one convolution step (or one
	// lookup) instead of a full re-derivation. See EnableConvMemo.
	convMemo atomic.Pointer[core.ConvMemo]

	// synopsis, when non-nil, is the offline sub-path synopsis: a
	// read-only store of pre-materialized prefix states trained with
	// the model and persisted in its file, consulted before the
	// runtime memo. See BuildSynopsis and AttachSynopsis.
	synopsis atomic.Pointer[core.SynopsisStore]

	// planner, when non-nil, is the batch-aware query planner:
	// PlanDistributions hands it whole batches so overlapping query
	// paths share each sub-path convolution outright instead of
	// rediscovering it through the memo. See EnableBatchPlanner.
	planner atomic.Pointer[core.BatchPlanner]

	// planMu guards planAgg, the planner counters accumulated across
	// batches for PlannerStats.
	planMu  sync.Mutex
	planAgg PlannerStats

	// computeProbe, when non-nil, is invoked once per underlying
	// CostDistribution computation in PathDistribution. Test seam for
	// the singleflight guarantee; never set it outside tests.
	computeProbe func()
}

// NewSystem trains a hybrid graph from an existing network and
// trajectory collection — the entry point for real data.
func NewSystem(g *Graph, data *Collection, params Params) (*System, error) {
	h, err := core.Build(g, data, params)
	if err != nil {
		return nil, err
	}
	return &System{
		Graph:  g,
		Data:   data,
		Hybrid: h,
		Router: routing.New(h),
		Params: params,
	}, nil
}

// SynthesizeConfig configures the built-in city simulator, the
// substitute for the paper's Aalborg/Beijing fleets.
type SynthesizeConfig struct {
	// Preset selects the network size: "test", "small", "aalborg",
	// "beijing" (default "small").
	Preset string
	// Trips is the number of simulated trajectories (default 20000).
	Trips int
	// Seed makes the whole workload reproducible.
	Seed int64
	// Params for training; the zero value means DefaultParams.
	Params Params
	// WithEmissions also simulates GHG costs per edge.
	WithEmissions bool
	// Traffic overrides the traffic model calibration.
	Traffic traffic.Config
}

// Synthesize generates a city network and trajectory workload, then
// trains the hybrid graph on it.
func Synthesize(cfg SynthesizeConfig) (*System, error) {
	if cfg.Preset == "" {
		cfg.Preset = "small"
	}
	if cfg.Trips == 0 {
		cfg.Trips = 20000
	}
	if cfg.Params.AlphaMinutes == 0 {
		cfg.Params = DefaultParams()
	}
	g := netgen.Generate(netgen.PresetConfig(netgen.Preset(cfg.Preset)))
	gen := trajgen.New(g, traffic.NewModel(cfg.Traffic), trajgen.Config{
		Seed:          cfg.Seed,
		NumTrips:      cfg.Trips,
		WithEmissions: cfg.WithEmissions,
	})
	res := gen.Generate()
	return NewSystem(g, res.Collection, cfg.Params)
}

// EnableQueryCache puts a sharded LRU of at most capacity entries in
// front of PathDistribution, keyed by (path signature, departure
// α-interval, method). Cached answers are approximate in one
// deliberate way: all departures falling in the same α-interval share
// the distribution computed for the first of them, matching the
// paper's premise that cost distributions are stationary within an
// interval. Cached *QueryResult values are shared between callers and
// must be treated as read-only. capacity ≤ 0 disables the cache.
//
// EnableQueryCache is safe to call while queries are in flight: the
// cache pointer is swapped atomically, in-flight queries finish
// against whichever cache they started with, and calling it again
// (any capacity) starts from an empty cache with fresh counters.
//
// The cache fronts distribution queries only; Route and TopKRoutes
// keep their own optimization (incremental chain-evaluation state
// along the DFS) and do not consult it.
func (s *System) EnableQueryCache(capacity int) {
	if capacity <= 0 {
		s.qcache.Store(nil)
		return
	}
	s.qcache.Store(cache.NewLRU[*QueryResult](capacity))
}

// QueryCacheStats snapshots the query cache's hit/miss/eviction
// counters; ok is false when no cache is enabled.
func (s *System) QueryCacheStats() (st CacheStats, ok bool) {
	c := s.qcache.Load()
	if c == nil {
		return CacheStats{}, false
	}
	return c.Stats(), true
}

// EnableConvMemo installs the incremental sub-path convolution engine:
// a memo of at most capacity prefix chain states, keyed by (path
// prefix, exact departure time, method, rank cap) and shared between
// PathDistribution and the Router's BestPath/TopKPaths/SkylinePaths.
// Evaluating a path then resumes from its longest already-seen prefix
// — one convolution per new edge — and routing queries, batch-server
// entries and distribution queries all feed one another's prefixes.
//
// Unlike the query cache (EnableQueryCache), the memo is exact:
// results are byte-identical to unmemoized evaluation, because the
// keys carry the exact departure time and the chain evaluator applies
// exactly the operations the one-shot evaluator applies. Methods
// without an incremental evaluator (RD) bypass the memo.
//
// capacity ≤ 0 removes the memo. Safe to call while queries are in
// flight: the pointer swaps atomically and running queries finish
// against whichever memo they started with. Calling it again starts
// from an empty memo with fresh counters.
func (s *System) EnableConvMemo(capacity int) {
	if capacity <= 0 {
		s.convMemo.Store(nil)
		s.Router.SetMemo(nil)
		return
	}
	m := core.NewConvMemo(capacity)
	s.convMemo.Store(m)
	s.Router.SetMemo(m)
}

// ConvMemoStats snapshots the convolution memo's hit/miss/eviction
// counters; ok is false when no memo is enabled.
func (s *System) ConvMemoStats() (st CacheStats, ok bool) {
	m := s.convMemo.Load()
	if m == nil {
		return CacheStats{}, false
	}
	return m.Stats(), true
}

// BuildSynopsis runs the offline synopsis selection pass over a
// workload sample (a real query log or a synthetic stand-in — see
// SyntheticWorkload), materializes the selected sub-path states under
// the configured entry/byte budget, and attaches the store so
// PathDistribution and the Router consult it. SaveModel then persists
// it with the model, and LoadSystem re-attaches it at load — the
// "train once, serve warm" shape: a freshly booted server answers the
// synopsis's sub-paths with zero convolutions.
func (s *System) BuildSynopsis(workload []WorkloadQuery, cfg SynopsisConfig) (*core.SynopsisStore, error) {
	syn, err := s.Hybrid.BuildSynopsis(workload, cfg)
	if err != nil {
		return nil, err
	}
	s.AttachSynopsis(syn)
	return syn, nil
}

// AttachSynopsis installs (or, with nil, removes) a synopsis store,
// sharing it with the Router. Safe to call while queries are in
// flight: the pointer swaps atomically and running queries finish
// against whichever store they started with.
func (s *System) AttachSynopsis(syn *core.SynopsisStore) {
	s.synopsis.Store(syn)
	s.Router.SetSynopsis(syn)
}

// Synopsis returns the attached synopsis store, or nil.
func (s *System) Synopsis() *core.SynopsisStore { return s.synopsis.Load() }

// SynopsisStats snapshots the synopsis's size and probe counters; ok
// is false when no synopsis is attached.
func (s *System) SynopsisStats() (st SynopsisStats, ok bool) {
	syn := s.synopsis.Load()
	if syn == nil {
		return SynopsisStats{}, false
	}
	return syn.Stats(), true
}

// PlannerStats aggregates batch-planner effectiveness across every
// PlanDistributions call since EnableBatchPlanner: Batches planned,
// plus the summed per-batch PlanStats counters. SavedSteps (from the
// embedded PlanStats) is the total chain steps the planner eliminated
// versus independent evaluation.
type PlannerStats struct {
	// Batches counts PlanDistributions calls.
	Batches int
	// Workers is the planner's worker-pool bound.
	Workers int
	PlanStats
}

// EnableBatchPlanner installs the batch-aware query planner:
// PlanDistributions then decomposes each batch's query paths into a
// shared prefix trie and evaluates every common sub-path convolution
// exactly once (cross-query common-subexpression elimination), and
// Route/TopKRoutes evaluate each DFS frontier's sibling expansions as
// one implicit batch. Planned answers are byte-identical to
// independent evaluation — the planner builds the same chain states
// through the same synopsis → memo → compute probe order.
//
// workers bounds the planner's evaluation pool; ≤ 0 means GOMAXPROCS.
// Safe to call while queries are in flight (the pointer swaps
// atomically); calling it again resets the accumulated PlannerStats.
func (s *System) EnableBatchPlanner(workers int) {
	s.planMu.Lock()
	s.planAgg = PlannerStats{}
	s.planMu.Unlock()
	s.planner.Store(core.NewBatchPlanner(s.Hybrid, workers))
}

// DisableBatchPlanner removes the planner; PlanDistributions then
// falls back to an ephemeral planner per call (still correct, no
// stats), and routing reverts to sequential expansion.
func (s *System) DisableBatchPlanner() { s.planner.Store(nil) }

// Planner returns the installed batch planner, or nil.
func (s *System) Planner() *core.BatchPlanner { return s.planner.Load() }

// PlannerStats snapshots the accumulated planner counters; ok is
// false when no planner is enabled.
func (s *System) PlannerStats() (st PlannerStats, ok bool) {
	bp := s.planner.Load()
	if bp == nil {
		return PlannerStats{}, false
	}
	s.planMu.Lock()
	st = s.planAgg
	s.planMu.Unlock()
	st.Workers = bp.Workers()
	return st, true
}

// PlanDistributions answers a batch of distribution queries through
// the batch planner: overlapping query paths share every common
// sub-path convolution, evaluated once across a bounded worker pool.
// Results are positional and byte-identical to evaluating each query
// independently. Per-entry failures stay per-entry — one unanswerable
// query never poisons the sub-paths it shares with valid ones.
//
// The query cache (EnableQueryCache), when enabled, fronts the plan:
// entries it answers keep its documented α-interval approximation,
// and planned results fill it for later single queries. Unlike
// PathDistributionGated, planned cache misses do not engage the
// singleflight — the plan itself already collapses duplicate work
// inside the batch.
//
// acquire/release follow the PathDistributionGated contract, charged
// once for the whole planned evaluation (one batch is one CPU-bound
// computation): acquire runs only when at least one entry missed the
// cache, and acquire returning false fails those entries with
// ErrGateRejected. Either hook may be nil. The returned PlanStats
// covers the planned (cache-miss) portion of the batch.
func (s *System) PlanDistributions(ctx context.Context, queries []PlanQuery,
	acquire func() bool, release func()) ([]PlanResult, PlanStats) {
	if ctx == nil {
		ctx = context.Background()
	}
	bp := s.planner.Load()
	installed := bp != nil
	if !installed {
		bp = core.NewBatchPlanner(s.Hybrid, 0)
	}
	out := make([]PlanResult, len(queries))
	c := s.qcache.Load()
	miss := make([]int, 0, len(queries))
	missQ := make([]PlanQuery, 0, len(queries))
	for i, q := range queries {
		m := q.Opt.Method
		if m == "" {
			m = OD
		}
		// Only default-shaped queries (no rank cap) share the query
		// cache: its keys carry (path, α-interval, method) and nothing
		// else, exactly PathDistribution's key space.
		if c != nil && q.Opt.RankCap == 0 && len(q.Path) > 0 {
			if res, ok := c.Get(s.queryKey(q.Path, q.Depart, m)); ok {
				out[i] = PlanResult{Res: res}
				continue
			}
		}
		miss = append(miss, i)
		missQ = append(missQ, q)
	}
	var stats PlanStats
	if len(miss) > 0 {
		gated := func() bool {
			if acquire != nil {
				if !acquire() {
					return false
				}
				if release != nil {
					defer release()
				}
			}
			res, st := bp.Distributions(ctx, s.synopsis.Load(), s.convMemo.Load(), missQ)
			stats = st
			for j, i := range miss {
				out[i] = res[j]
				if c != nil && res[j].Err == nil && missQ[j].Opt.RankCap == 0 {
					m := missQ[j].Opt.Method
					if m == "" {
						m = OD
					}
					c.Put(s.queryKey(missQ[j].Path, missQ[j].Depart, m), res[j].Res)
				}
			}
			return true
		}
		if !gated() {
			for _, i := range miss {
				out[i] = PlanResult{Err: ErrGateRejected}
			}
		}
	}
	if installed {
		s.planMu.Lock()
		s.planAgg.Batches++
		s.planAgg.Queries += stats.Queries
		s.planAgg.Planned += stats.Planned
		s.planAgg.Fallback += stats.Fallback
		s.planAgg.Nodes += stats.Nodes
		s.planAgg.SharedNodes += stats.SharedNodes
		s.planAgg.Convolutions += stats.Convolutions
		s.planAgg.ProbeHits += stats.ProbeHits
		s.planAgg.IndependentSteps += stats.IndependentSteps
		s.planMu.Unlock()
	}
	return out, stats
}

// SyntheticWorkload samples a prefix-heavy query log: trunk paths of
// the given cardinality found by random walk, each contributing its
// prefixes of random depth ≥ 2, departing at times drawn from
// departs. It stands in for a real query log when training a synopsis
// (the shape mirrors what a router exploring candidates from a few
// sources, or a fleet of commuters on shared corridors, produces).
func (s *System) SyntheticWorkload(n, card int, seed int64, departs []float64) ([]WorkloadQuery, error) {
	if n < 1 {
		return nil, fmt.Errorf("pathcost: workload size %d must be ≥ 1", n)
	}
	if card < 2 {
		card = 2
	}
	if len(departs) == 0 {
		departs = []float64{8 * 3600}
	}
	rnd := rand.New(rand.NewSource(seed))
	trunks := n / 16
	if trunks < 1 {
		trunks = 1
	}
	pool := make([]Path, 0, trunks)
	for len(pool) < trunks {
		p, err := s.RandomQueryPath(card, rnd.Intn)
		if err != nil {
			return nil, err
		}
		pool = append(pool, p)
	}
	out := make([]WorkloadQuery, n)
	for i := range out {
		trunk := pool[rnd.Intn(len(pool))]
		out[i] = WorkloadQuery{
			Path:   trunk[:2+rnd.Intn(len(trunk)-1)],
			Depart: departs[rnd.Intn(len(departs))],
		}
	}
	return out, nil
}

// queryKey is the cache identity of a distribution query: the path's
// canonical signature plus the departure α-interval and the method.
func (s *System) queryKey(p Path, depart float64, m Method) string {
	return p.Key() + "@" + strconv.Itoa(s.Params.IntervalOf(depart)) + "/" + string(m)
}

// PathDistribution estimates the cost distribution of a path at the
// given departure time (seconds; time-of-day or absolute). When a
// query cache is enabled (EnableQueryCache), repeated queries for the
// same (path, α-interval, method) are served from memory, and
// concurrent misses on one key are collapsed into a single underlying
// computation (no cache stampede); the returned result is then shared
// between callers and must not be mutated.
func (s *System) PathDistribution(p Path, depart float64, m Method) (*QueryResult, error) {
	return s.PathDistributionGated(context.Background(), p, depart, m, nil, nil)
}

// ErrGateRejected is returned by PathDistributionGated when the
// caller's acquire hook refuses the computation slot.
var ErrGateRejected = errors.New("pathcost: computation gate rejected the query")

// PathDistributionGated is PathDistribution with a concurrency gate
// charged only for real work: acquire runs immediately before an
// actual underlying CostDistribution computation, and release runs
// after it. Cache hits and singleflight followers (callers whose
// answer is produced by a concurrent leader) never touch the gate, so
// a bound implemented with it tracks CPU-bound computations rather
// than parked requests. acquire returning false aborts the query with
// ErrGateRejected — and only the caller's own acquire can reject it:
// a follower that inherits a leader's rejection through the flight
// silently retries until its own hook decides. Either hook may be
// nil: a nil acquire disables gating entirely, a nil release just
// skips the post-computation call.
//
// ctx cancels *waiting*, not computing: a caller parked behind a
// concurrent leader's computation unblocks when ctx ends and gets
// ctx's error, while the leader's computation continues and still
// fills the cache. A caller that is itself the leader runs to
// completion (bound leader-side work with the acquire hook instead).
// A nil ctx means context.Background.
func (s *System) PathDistributionGated(ctx context.Context, p Path, depart float64, m Method,
	acquire func() bool, release func()) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if m == "" {
		// Normalize before keying: core defaults "" to OD, so both
		// spellings are one logical query and must share one cache
		// and flight entry.
		m = OD
	}
	if s.qcache.Load() == nil && acquire == nil {
		// Uncached, ungated: skip the closure machinery entirely (the
		// loop below would take this branch anyway).
		return s.compute(p, depart, m)
	}
	gated := func() (*QueryResult, error) {
		if acquire != nil {
			if !acquire() {
				return nil, ErrGateRejected
			}
			if release != nil {
				defer release()
			}
		}
		return s.compute(p, depart, m)
	}
	counted := false
	for {
		c := s.qcache.Load()
		if c == nil {
			// Uncached queries stay independent on purpose: each caller
			// owns its result and may post-process it freely.
			return gated()
		}
		key := s.queryKey(p, depart, m)
		// One logical query counts one hit or miss, however many
		// retry iterations it takes: only the first lookup uses the
		// stat-counting Get.
		var res *QueryResult
		var ok bool
		if counted {
			res, ok = c.Peek(key)
		} else {
			res, ok = c.Get(key)
			counted = true
		}
		if ok {
			return res, nil
		}
		res, shared, err := s.flight.DoCtx(ctx, key, func() (*QueryResult, error) {
			// Re-check: a previous flight may have filled the cache
			// between this caller's miss and it becoming the leader.
			// Peek, not Get — the outer Get already counted this lookup.
			if res, ok := c.Peek(key); ok {
				return res, nil
			}
			res, err := gated()
			if err != nil {
				return nil, err
			}
			c.Put(key, res)
			return res, nil
		})
		if shared && errors.Is(err, ErrGateRejected) {
			// The rejection belongs to the leader (its acquire hook
			// refused — typically its client vanished while queued);
			// this caller's own gate was never consulted. Go again: a
			// surviving caller becomes the new leader, and its own
			// acquire decides.
			continue
		}
		return res, err
	}
}

// compute runs one underlying estimation (the expensive step the
// cache and singleflight both exist to avoid repeating). The synopsis
// (offline, persisted) is consulted before the convolution memo
// (runtime, lazy); either resumes evaluation from the deepest known
// prefix of p, and the answer is byte-identical with both, either or
// neither enabled.
func (s *System) compute(p Path, depart float64, m Method) (*QueryResult, error) {
	if s.computeProbe != nil {
		s.computeProbe()
	}
	syn := s.synopsis.Load()
	mm := s.convMemo.Load()
	if syn != nil || mm != nil {
		return s.Hybrid.CostDistributionWith(syn, mm, p, depart, core.QueryOptions{Method: m})
	}
	return s.Hybrid.CostDistribution(p, depart, core.QueryOptions{Method: m})
}

// GroundTruth runs the accuracy-optimal baseline (Section 2.2) on the
// system's trajectory data; it fails when fewer than β trajectories
// qualify (the sparseness problem).
func (s *System) GroundTruth(p Path, depart float64) (*Histogram, int, error) {
	return core.GroundTruth(s.Data, p, depart, s.Params)
}

// Route answers a probabilistic budget query: the path from src to dst
// maximizing P(travel time ≤ budget) when departing at depart. With a
// batch planner enabled (EnableBatchPlanner), each DFS frontier's
// sibling expansions evaluate as one implicit batch on the planner's
// worker pool; the answer is byte-identical either way.
func (s *System) Route(src, dst VertexID, depart, budget float64, m Method) (*RouteResult, error) {
	return s.Router.BestPath(routing.Query{
		Source: src, Dest: dst, Depart: depart, Budget: budget,
	}, s.routeOptions(m))
}

// routeOptions assembles the routing options shared by Route and
// TopKRoutes, propagating the batch planner's worker bound when one
// is enabled.
func (s *System) routeOptions(m Method) routing.Options {
	opt := routing.Options{Method: m, Incremental: true}
	if bp := s.planner.Load(); bp != nil {
		opt.BatchWorkers = bp.Workers()
	}
	return opt
}

// DensePath is a query-path candidate backed by many trajectories.
type DensePath struct {
	Path     Path
	Interval int // α-interval index of the arrivals
	Count    int // trajectories traversing Path in Interval
}

// DensePaths scans the trajectory collection for paths of the given
// cardinality with at least minCount traversals within a single
// α-interval — the workload selector behind the paper's accuracy
// experiments (Figures 4, 13, 14).
func (s *System) DensePaths(cardinality, minCount int) []DensePath {
	type key struct {
		pk string
		iv int
	}
	counts := make(map[key]int)
	samples := make(map[key]Path)
	for i := 0; i < s.Data.Len(); i++ {
		m := s.Data.Traj(i)
		if len(m.Path) < cardinality {
			continue
		}
		for pos := 0; pos+cardinality <= len(m.Path); pos++ {
			sub := m.Path[pos : pos+cardinality]
			iv := s.Params.IntervalOf(m.ArrivalAt(pos))
			k := key{pk: sub.Key(), iv: iv}
			counts[k]++
			if _, ok := samples[k]; !ok {
				samples[k] = sub.Clone()
			}
		}
	}
	var out []DensePath
	for k, c := range counts {
		if c >= minCount {
			out = append(out, DensePath{Path: samples[k], Interval: k.iv, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Path.Key() < out[j].Path.Key()
	})
	return out
}

// RandomQueryPath samples a simple path of exactly n edges by random
// walk from a random populated edge; used to generate long query
// workloads (Figures 15 and 16). rnd is any deterministic int source.
func (s *System) RandomQueryPath(n int, rnd func(int) int) (Path, error) {
	if s.Graph.NumEdges() == 0 {
		// Guard before calling rnd(0): rand.Intn-shaped sources panic
		// on a non-positive bound.
		return nil, fmt.Errorf("pathcost: graph has no edges, cannot sample a query path")
	}
	for attempt := 0; attempt < 200; attempt++ {
		start := EdgeID(rnd(s.Graph.NumEdges()))
		if p := s.Graph.RandomWalkPath(start, n, rnd); p != nil {
			return p, nil
		}
	}
	return nil, fmt.Errorf("pathcost: no %d-edge simple path found after 200 attempts", n)
}

// Stats returns the hybrid graph's build statistics (variable counts
// by rank, coverage, storage).
func (s *System) Stats() core.BuildStats { return s.Hybrid.Stats() }

// SaveModel writes the trained hybrid graph to w — including the
// attached synopsis, when one exists, in a versioned trailing section
// — and LoadSystem restores both against the same road network.
// Training is the expensive step (the paper reports minutes to 45
// minutes on its fleets), so real deployments train once and serve
// many queries.
func (s *System) SaveModel(w io.Writer) error {
	return s.Hybrid.WriteModelSynopsis(w, s.synopsis.Load())
}

// LoadSystem restores a saved model against the road network it was
// trained on; a synopsis section, when present, is loaded and
// attached (AttachSynopsis(nil) detaches it). data may be nil; it is
// only needed by GroundTruth and DensePaths.
func LoadSystem(g *Graph, data *Collection, r io.Reader) (*System, error) {
	h, syn, err := core.ReadHybridSynopsis(r, g)
	if err != nil {
		return nil, err
	}
	sys := &System{
		Graph:  g,
		Data:   data,
		Hybrid: h,
		Router: routing.New(h),
		Params: h.Params,
	}
	if syn != nil {
		sys.AttachSynopsis(syn)
	}
	return sys, nil
}

// TopKRoutes answers the probabilistic top-k path query: the k best
// paths by probability of arriving within the budget.
func (s *System) TopKRoutes(src, dst VertexID, depart, budget float64, k int, m Method) ([]routing.TopKResult, error) {
	return s.Router.TopKPaths(routing.Query{
		Source: src, Dest: dst, Depart: depart, Budget: budget,
	}, k, s.routeOptions(m))
}
