// Package pathcost is the public API of the reproduction of Dai,
// Yang, Guo, Jensen, Hu: "Path Cost Distribution Estimation Using
// Trajectory Data" (PVLDB 10(3), 2016).
//
// It estimates the full probability distribution — not just the mean —
// of the travel cost of any road-network path at a given departure
// time, from historical trajectories. The core idea is the paper's
// hybrid graph: weights are joint cost distributions attached to
// *paths* (multi-dimensional histograms capturing inter-edge
// dependence), and a query is answered by selecting the coarsest
// decomposition of the query path into weighted sub-paths and
// combining their joints via decomposable-model factorization.
//
// Typical use:
//
//	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
//		Preset: "small", Trips: 20000, Seed: 1,
//	})
//	res, err := sys.PathDistribution(path, 8*3600, pathcost.OD)
//	fmt.Println("P(≤ 10 min) =", res.Dist.ProbWithin(600))
//
// Real deployments would replace Synthesize with NewSystem over a road
// network and map-matched trajectories (see internal/mapmatch for the
// HMM matcher that turns raw GPS into such trajectories).
package pathcost

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/hist"
	"repro/internal/netgen"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/trajgen"
	"repro/internal/wal"
)

// Re-exported types so callers need only this package for common use.
type (
	// Graph is a directed road network.
	Graph = graph.Graph
	// Path is a sequence of adjacent edge IDs.
	Path = graph.Path
	// EdgeID identifies a road segment.
	EdgeID = graph.EdgeID
	// VertexID identifies an intersection.
	VertexID = graph.VertexID
	// Histogram is a one-dimensional cost distribution.
	Histogram = hist.Histogram
	// Params are the hybrid-graph parameters (α, β, MaxRank, ...).
	Params = core.Params
	// CostDomain selects which travel cost distributions describe.
	CostDomain = core.CostDomain
	// Method selects an estimation strategy.
	Method = core.Method
	// Collection is an indexed set of map-matched trajectories.
	Collection = gps.Collection
	// Matched is one map-matched trajectory observation.
	Matched = gps.Matched
	// QueryResult is a cost-distribution query outcome.
	QueryResult = core.QueryResult
	// RouteResult is a stochastic routing outcome.
	RouteResult = routing.Result
	// CacheStats reports query-cache effectiveness (see EnableQueryCache).
	CacheStats = cache.Stats
	// WorkloadQuery is one query-log observation used to train the
	// offline sub-path synopsis (see BuildSynopsis).
	WorkloadQuery = core.WorkloadQuery
	// SynopsisConfig tunes the synopsis selection pass.
	SynopsisConfig = core.SynopsisConfig
	// SynopsisStats reports synopsis size and probe effectiveness.
	SynopsisStats = core.SynopsisStats
	// QueryOptions selects method, rank cap and seed for one query.
	QueryOptions = core.QueryOptions
	// PlanQuery is one entry of a planned batch (see PlanDistributions).
	PlanQuery = core.PlanQuery
	// PlanResult is one planned entry's outcome.
	PlanResult = core.PlanResult
	// PlanStats instruments one planned batch.
	PlanStats = core.PlanStats
)

// Estimation methods (Section 5.2.2 of the paper).
const (
	// OD is the paper's proposal: the optimal (coarsest) decomposition.
	OD = core.MethodOD
	// RD uses a random decomposition.
	RD = core.MethodRD
	// HP uses pairwise joint distributions only.
	HP = core.MethodHP
	// LB is the legacy independent-edge convolution baseline.
	LB = core.MethodLB
)

// Cost domains: travel time in seconds (default) or GHG emissions in
// grams. Set Params.Domain before NewSystem/Synthesize.
const (
	DomainTime      = core.DomainTime
	DomainEmissions = core.DomainEmissions
)

// DefaultParams returns the paper's defaults (α = 30 min, β = 30).
func DefaultParams() Params { return core.DefaultParams() }

// ModelEpoch is one published model snapshot: a hybrid graph, the
// trajectory collection backing it (nil when the model was loaded
// without data), and a router evaluating against exactly this model.
// The model content is immutable after publish; queries that loaded an
// epoch keep a consistent view of it even while the next epoch is
// being built and published. Accelerator attachments (synopsis, memo
// view, planner) are swappable per epoch via the System's Enable*/
// Attach* methods.
type ModelEpoch struct {
	// Seq is the monotonically increasing epoch sequence number; it
	// namespaces every query-cache key, memo key and planner probe so
	// a publish invalidates derived state logically — stale entries of
	// older epochs can never answer queries on this one.
	Seq    uint64
	Hybrid *core.HybridGraph
	Data   *Collection
	Router *routing.Router

	// synopsis is the epoch's offline sub-path synopsis (rebuilt
	// incrementally at publish); memo is the epoch-scoped view of the
	// System's shared convolution memo; planner is the batch planner
	// built over this epoch's hybrid.
	synopsis atomic.Pointer[core.SynopsisStore]
	memo     atomic.Pointer[core.ConvMemo]
	planner  atomic.Pointer[core.BatchPlanner]
}

// Synopsis returns the epoch's synopsis store, or nil.
func (e *ModelEpoch) Synopsis() *core.SynopsisStore { return e.synopsis.Load() }

// System bundles a road network, the epoch-versioned trained model
// (hybrid graph, trajectory collection, router) and the serving
// machinery around it.
//
// A System is safe for concurrent use: any number of goroutines may
// run PathDistribution, Route, TopKRoutes, GroundTruth and
// QueryCacheStats simultaneously, and EnableQueryCache, EnableConvMemo
// and ApplyDeltas/PublishEpoch may be called while queries are in
// flight. Each query snapshots the current epoch once (one atomic
// load) and runs entirely against it; publishing a new epoch swaps the
// pointer and never blocks in-flight queries. Graph and Params are
// immutable after construction.
type System struct {
	Graph  *Graph
	Params Params

	// epoch is the currently served model snapshot; see ModelEpoch.
	epoch atomic.Pointer[ModelEpoch]

	// qcache, when non-nil, memoizes PathDistribution results per
	// (epoch, path, α-interval, method). It is an atomic pointer so
	// EnableQueryCache can install, resize or remove the cache while
	// queries are running. See EnableQueryCache.
	qcache atomic.Pointer[cache.LRU[*QueryResult]]

	// flight collapses concurrent PathDistribution misses on one key
	// into a single CostDistribution computation (anti-stampede).
	flight cache.Flight[*QueryResult]

	// convMemo, when non-nil, is the shared LRU behind the incremental
	// sub-path convolution engine. Each epoch works through its own
	// ForEpoch view of it, so a publish logically invalidates memoized
	// states without flushing the pool. See EnableConvMemo.
	convMemo atomic.Pointer[core.ConvMemo]

	// planMu guards planAgg, the planner counters accumulated across
	// batches for PlannerStats.
	planMu  sync.Mutex
	planAgg PlannerStats

	// pubMu serializes epoch publishes and attachment changes; it is
	// never taken by queries.
	pubMu sync.Mutex
	// stageMu guards the staged delta buffer (trajectories accepted by
	// StageTrajectories and not yet published) and the WAL bookkeeping
	// that shadows it: wlog (when attached), walHigh (the WAL sequence
	// covering everything staged so far) and walErrors. Appending to
	// the WAL and to staged under one critical section keeps their
	// orders identical, which is what makes replay equivalent to the
	// uninterrupted staging history.
	stageMu   sync.Mutex
	staged    []*Matched
	wlog      *wal.Log
	walHigh   uint64
	walErrors uint64
	// checkpointFn, when non-nil, persists the freshly published model;
	// PublishEpoch truncates the WAL only after it succeeds. Without a
	// checkpointer the WAL retains every record, and recovery replays
	// them all against the base model — exact-mode builds are
	// batching-invariant, so both configurations recover the same
	// bytes. Set via SetWALCheckpoint while holding no locks.
	checkpointFn func() error
	// decayBits holds math.Float64bits of the decay halflife in
	// seconds (0 = exact mode); see SetDecayHalflife.
	decayBits atomic.Uint64
	// lastPublish is read/written only while holding pubMu.
	lastPublish time.Time
	// statMu guards the publish bookkeeping below (kept separate from
	// pubMu so EpochStats never waits behind an in-progress build).
	statMu      sync.Mutex
	publishes   uint64
	stagedTotal uint64
	lastDelta   core.EpochDelta
	lastBuild   time.Duration
	lastFactor  float64
	lastSyn     core.SynopsisRebuildStats

	// computeProbe, when non-nil, is invoked once per underlying
	// CostDistribution computation in PathDistribution. Test seam for
	// the singleflight guarantee; never set it outside tests.
	computeProbe func()
	// buildProbe, when non-nil, runs inside PublishEpoch after the
	// staged batch is drained and may fail the build. Test seam for
	// the restore-ordering guarantee; never set it outside tests.
	buildProbe func() error
}

// newSystem wraps a trained hybrid as epoch 1 of a fresh System.
func newSystem(g *Graph, data *Collection, h *core.HybridGraph, params Params) *System {
	s := &System{Graph: g, Params: params, lastPublish: time.Now()}
	s.epoch.Store(&ModelEpoch{Seq: 1, Hybrid: h, Data: data, Router: routing.New(h)})
	return s
}

// NewSystem trains a hybrid graph from an existing network and
// trajectory collection — the entry point for real data.
func NewSystem(g *Graph, data *Collection, params Params) (*System, error) {
	h, err := core.Build(g, data, params)
	if err != nil {
		return nil, err
	}
	return newSystem(g, data, h, params), nil
}

// CurrentEpoch returns the currently served model snapshot. Callers
// that make several dependent reads should snapshot once and use the
// returned epoch throughout, as every query path here does.
func (s *System) CurrentEpoch() *ModelEpoch { return s.epoch.Load() }

// Epoch returns the current epoch sequence number.
func (s *System) Epoch() uint64 { return s.epoch.Load().Seq }

// Hybrid returns the current epoch's trained hybrid graph.
func (s *System) Hybrid() *core.HybridGraph { return s.epoch.Load().Hybrid }

// Router returns the current epoch's stochastic router.
func (s *System) Router() *routing.Router { return s.epoch.Load().Router }

// Data returns the current epoch's trajectory collection (nil when
// the model was loaded without data).
func (s *System) Data() *Collection { return s.epoch.Load().Data }

// SynthesizeConfig configures the built-in city simulator, the
// substitute for the paper's Aalborg/Beijing fleets.
type SynthesizeConfig struct {
	// Preset selects the network size: "test", "small", "aalborg",
	// "beijing" (default "small").
	Preset string
	// Trips is the number of simulated trajectories (default 20000).
	Trips int
	// Seed makes the whole workload reproducible.
	Seed int64
	// Params for training; the zero value means DefaultParams.
	Params Params
	// WithEmissions also simulates GHG costs per edge.
	WithEmissions bool
	// Traffic overrides the traffic model calibration.
	Traffic traffic.Config
}

// Synthesize generates a city network and trajectory workload, then
// trains the hybrid graph on it.
func Synthesize(cfg SynthesizeConfig) (*System, error) {
	if cfg.Preset == "" {
		cfg.Preset = "small"
	}
	if cfg.Trips == 0 {
		cfg.Trips = 20000
	}
	if cfg.Params.AlphaMinutes == 0 {
		cfg.Params = DefaultParams()
	}
	g := netgen.Generate(netgen.PresetConfig(netgen.Preset(cfg.Preset)))
	gen := trajgen.New(g, traffic.NewModel(cfg.Traffic), trajgen.Config{
		Seed:          cfg.Seed,
		NumTrips:      cfg.Trips,
		WithEmissions: cfg.WithEmissions,
	})
	res := gen.Generate()
	return NewSystem(g, res.Collection, cfg.Params)
}

// EnableQueryCache puts a sharded LRU of at most capacity entries in
// front of PathDistribution, keyed by (path signature, departure
// α-interval, method). Cached answers are approximate in one
// deliberate way: all departures falling in the same α-interval share
// the distribution computed for the first of them, matching the
// paper's premise that cost distributions are stationary within an
// interval. Cached *QueryResult values are shared between callers and
// must be treated as read-only. capacity ≤ 0 disables the cache.
//
// EnableQueryCache is safe to call while queries are in flight: the
// cache pointer is swapped atomically, in-flight queries finish
// against whichever cache they started with, and calling it again
// (any capacity) starts from an empty cache with fresh counters.
//
// The cache fronts distribution queries only; Route and TopKRoutes
// keep their own optimization (incremental chain-evaluation state
// along the DFS) and do not consult it.
func (s *System) EnableQueryCache(capacity int) {
	if capacity <= 0 {
		s.qcache.Store(nil)
		return
	}
	s.qcache.Store(cache.NewLRU[*QueryResult](capacity))
}

// QueryCacheStats snapshots the query cache's hit/miss/eviction
// counters; ok is false when no cache is enabled.
func (s *System) QueryCacheStats() (st CacheStats, ok bool) {
	c := s.qcache.Load()
	if c == nil {
		return CacheStats{}, false
	}
	return c.Stats(), true
}

// EnableConvMemo installs the incremental sub-path convolution engine:
// a memo of at most capacity prefix chain states, keyed by (path
// prefix, exact departure time, method, rank cap) and shared between
// PathDistribution and the Router's BestPath/TopKPaths/SkylinePaths.
// Evaluating a path then resumes from its longest already-seen prefix
// — one convolution per new edge — and routing queries, batch-server
// entries and distribution queries all feed one another's prefixes.
//
// Unlike the query cache (EnableQueryCache), the memo is exact:
// results are byte-identical to unmemoized evaluation, because the
// keys carry the exact departure time and the chain evaluator applies
// exactly the operations the one-shot evaluator applies. Methods
// without an incremental evaluator (RD) bypass the memo.
//
// capacity ≤ 0 removes the memo. Safe to call while queries are in
// flight: the pointer swaps atomically and running queries finish
// against whichever memo they started with. Calling it again starts
// from an empty memo with fresh counters.
func (s *System) EnableConvMemo(capacity int) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	ep := s.epoch.Load()
	if capacity <= 0 {
		s.convMemo.Store(nil)
		ep.memo.Store(nil)
		ep.Router.SetMemo(nil)
		return
	}
	m := core.NewConvMemo(capacity)
	s.convMemo.Store(m)
	view := m.ForEpoch(ep.Seq)
	ep.memo.Store(view)
	ep.Router.SetMemo(view)
}

// ConvMemoStats snapshots the convolution memo's hit/miss/eviction
// counters; ok is false when no memo is enabled.
func (s *System) ConvMemoStats() (st CacheStats, ok bool) {
	m := s.convMemo.Load()
	if m == nil {
		return CacheStats{}, false
	}
	return m.Stats(), true
}

// BuildSynopsis runs the offline synopsis selection pass over a
// workload sample (a real query log or a synthetic stand-in — see
// SyntheticWorkload), materializes the selected sub-path states under
// the configured entry/byte budget, and attaches the store so
// PathDistribution and the Router consult it. SaveModel then persists
// it with the model, and LoadSystem re-attaches it at load — the
// "train once, serve warm" shape: a freshly booted server answers the
// synopsis's sub-paths with zero convolutions.
func (s *System) BuildSynopsis(workload []WorkloadQuery, cfg SynopsisConfig) (*core.SynopsisStore, error) {
	syn, err := s.Hybrid().BuildSynopsis(workload, cfg)
	if err != nil {
		return nil, err
	}
	s.AttachSynopsis(syn)
	return syn, nil
}

// AttachSynopsis installs (or, with nil, removes) a synopsis store on
// the current epoch, sharing it with the epoch's Router. Safe to call
// while queries are in flight: the pointer swaps atomically and
// running queries finish against whichever store they started with.
// A later PublishEpoch carries the store forward, incrementally
// rebuilt for the new model (see SynopsisStore.Rebuild).
func (s *System) AttachSynopsis(syn *core.SynopsisStore) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	ep := s.epoch.Load()
	ep.synopsis.Store(syn)
	ep.Router.SetSynopsis(syn)
}

// Synopsis returns the current epoch's synopsis store, or nil.
func (s *System) Synopsis() *core.SynopsisStore { return s.epoch.Load().Synopsis() }

// SynopsisStats snapshots the synopsis's size and probe counters; ok
// is false when no synopsis is attached.
func (s *System) SynopsisStats() (st SynopsisStats, ok bool) {
	syn := s.Synopsis()
	if syn == nil {
		return SynopsisStats{}, false
	}
	return syn.Stats(), true
}

// PlannerStats aggregates batch-planner effectiveness across every
// PlanDistributions call since EnableBatchPlanner: Batches planned,
// plus the summed per-batch PlanStats counters. SavedSteps (from the
// embedded PlanStats) is the total chain steps the planner eliminated
// versus independent evaluation.
type PlannerStats struct {
	// Batches counts PlanDistributions calls.
	Batches int
	// Workers is the planner's worker-pool bound.
	Workers int
	PlanStats
}

// EnableBatchPlanner installs the batch-aware query planner:
// PlanDistributions then decomposes each batch's query paths into a
// shared prefix trie and evaluates every common sub-path convolution
// exactly once (cross-query common-subexpression elimination), and
// Route/TopKRoutes evaluate each DFS frontier's sibling expansions as
// one implicit batch. Planned answers are byte-identical to
// independent evaluation — the planner builds the same chain states
// through the same synopsis → memo → compute probe order.
//
// workers bounds the planner's evaluation pool; ≤ 0 means GOMAXPROCS.
// Safe to call while queries are in flight (the pointer swaps
// atomically); calling it again resets the accumulated PlannerStats.
func (s *System) EnableBatchPlanner(workers int) {
	s.planMu.Lock()
	s.planAgg = PlannerStats{}
	s.planMu.Unlock()
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	ep := s.epoch.Load()
	ep.planner.Store(core.NewBatchPlanner(ep.Hybrid, workers))
}

// DisableBatchPlanner removes the planner; PlanDistributions then
// falls back to an ephemeral planner per call (still correct, no
// stats), and routing reverts to sequential expansion.
func (s *System) DisableBatchPlanner() {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.epoch.Load().planner.Store(nil)
}

// Planner returns the current epoch's batch planner, or nil.
func (s *System) Planner() *core.BatchPlanner { return s.epoch.Load().planner.Load() }

// PlannerStats snapshots the accumulated planner counters; ok is
// false when no planner is enabled.
func (s *System) PlannerStats() (st PlannerStats, ok bool) {
	bp := s.Planner()
	if bp == nil {
		return PlannerStats{}, false
	}
	s.planMu.Lock()
	st = s.planAgg
	s.planMu.Unlock()
	st.Workers = bp.Workers()
	return st, true
}

// PlanDistributions answers a batch of distribution queries through
// the batch planner: overlapping query paths share every common
// sub-path convolution, evaluated once across a bounded worker pool.
// Results are positional and byte-identical to evaluating each query
// independently. Per-entry failures stay per-entry — one unanswerable
// query never poisons the sub-paths it shares with valid ones.
//
// The query cache (EnableQueryCache), when enabled, fronts the plan:
// entries it answers keep its documented α-interval approximation,
// and planned results fill it for later single queries. Unlike
// PathDistributionGated, planned cache misses do not engage the
// singleflight — the plan itself already collapses duplicate work
// inside the batch.
//
// acquire/release follow the PathDistributionGated contract, charged
// once for the whole planned evaluation (one batch is one CPU-bound
// computation): acquire runs only when at least one entry missed the
// cache, and acquire returning false fails those entries with
// ErrGateRejected. Either hook may be nil. The returned PlanStats
// covers the planned (cache-miss) portion of the batch.
func (s *System) PlanDistributions(ctx context.Context, queries []PlanQuery,
	acquire func() bool, release func()) ([]PlanResult, PlanStats) {
	if ctx == nil {
		ctx = context.Background()
	}
	ep := s.epoch.Load()
	bp := ep.planner.Load()
	installed := bp != nil
	if !installed {
		bp = core.NewBatchPlanner(ep.Hybrid, 0)
	}
	out := make([]PlanResult, len(queries))
	c := s.qcache.Load()
	miss := make([]int, 0, len(queries))
	missQ := make([]PlanQuery, 0, len(queries))
	for i, q := range queries {
		m := q.Opt.Method
		if m == "" {
			m = OD
		}
		// Only default-shaped queries (no rank cap) share the query
		// cache: its keys carry (path, α-interval, method) and nothing
		// else, exactly PathDistribution's key space.
		if c != nil && q.Opt.RankCap == 0 && len(q.Path) > 0 {
			if res, ok := c.Get(s.queryKey(ep, q.Path, q.Depart, m)); ok {
				out[i] = PlanResult{Res: res}
				continue
			}
		}
		miss = append(miss, i)
		missQ = append(missQ, q)
	}
	var stats PlanStats
	if len(miss) > 0 {
		gated := func() bool {
			if acquire != nil {
				if !acquire() {
					return false
				}
				if release != nil {
					defer release()
				}
			}
			res, st := bp.Distributions(ctx, ep.Synopsis(), ep.memo.Load(), missQ)
			stats = st
			for j, i := range miss {
				out[i] = res[j]
				if c != nil && res[j].Err == nil && missQ[j].Opt.RankCap == 0 {
					m := missQ[j].Opt.Method
					if m == "" {
						m = OD
					}
					c.Put(s.queryKey(ep, missQ[j].Path, missQ[j].Depart, m), res[j].Res)
				}
			}
			return true
		}
		if !gated() {
			for _, i := range miss {
				out[i] = PlanResult{Err: ErrGateRejected}
			}
		}
	}
	if installed {
		s.planMu.Lock()
		s.planAgg.Batches++
		s.planAgg.Queries += stats.Queries
		s.planAgg.Planned += stats.Planned
		s.planAgg.Fallback += stats.Fallback
		s.planAgg.Nodes += stats.Nodes
		s.planAgg.SharedNodes += stats.SharedNodes
		s.planAgg.Convolutions += stats.Convolutions
		s.planAgg.ProbeHits += stats.ProbeHits
		s.planAgg.IndependentSteps += stats.IndependentSteps
		s.planMu.Unlock()
	}
	return out, stats
}

// SyntheticWorkload samples a prefix-heavy query log: trunk paths of
// the given cardinality found by random walk, each contributing its
// prefixes of random depth ≥ 2, departing at times drawn from
// departs. It stands in for a real query log when training a synopsis
// (the shape mirrors what a router exploring candidates from a few
// sources, or a fleet of commuters on shared corridors, produces).
func (s *System) SyntheticWorkload(n, card int, seed int64, departs []float64) ([]WorkloadQuery, error) {
	if n < 1 {
		return nil, fmt.Errorf("pathcost: workload size %d must be ≥ 1", n)
	}
	if card < 2 {
		card = 2
	}
	if len(departs) == 0 {
		departs = []float64{8 * 3600}
	}
	rnd := rand.New(rand.NewSource(seed))
	trunks := n / 16
	if trunks < 1 {
		trunks = 1
	}
	pool := make([]Path, 0, trunks)
	for len(pool) < trunks {
		p, err := s.RandomQueryPath(card, rnd.Intn)
		if err != nil {
			return nil, err
		}
		pool = append(pool, p)
	}
	out := make([]WorkloadQuery, n)
	for i := range out {
		trunk := pool[rnd.Intn(len(pool))]
		out[i] = WorkloadQuery{
			Path:   trunk[:2+rnd.Intn(len(trunk)-1)],
			Depart: departs[rnd.Intn(len(departs))],
		}
	}
	return out, nil
}

// queryKey is the cache identity of a distribution query: the epoch
// it was answered against, the path's canonical signature, the
// departure α-interval and the method. The epoch prefix makes a
// publish invalidate cached answers logically — entries of older
// epochs can no longer be looked up and age out of the LRU.
func (s *System) queryKey(ep *ModelEpoch, p Path, depart float64, m Method) string {
	return "e" + strconv.FormatUint(ep.Seq, 10) + "|" + p.Key() +
		"@" + strconv.Itoa(s.Params.IntervalOf(depart)) + "/" + string(m)
}

// PathDistribution estimates the cost distribution of a path at the
// given departure time (seconds; time-of-day or absolute). When a
// query cache is enabled (EnableQueryCache), repeated queries for the
// same (path, α-interval, method) are served from memory, and
// concurrent misses on one key are collapsed into a single underlying
// computation (no cache stampede); the returned result is then shared
// between callers and must not be mutated.
func (s *System) PathDistribution(p Path, depart float64, m Method) (*QueryResult, error) {
	return s.PathDistributionGated(context.Background(), p, depart, m, nil, nil)
}

// ErrGateRejected is returned by PathDistributionGated when the
// caller's acquire hook refuses the computation slot.
var ErrGateRejected = errors.New("pathcost: computation gate rejected the query")

// PathDistributionGated is PathDistribution with a concurrency gate
// charged only for real work: acquire runs immediately before an
// actual underlying CostDistribution computation, and release runs
// after it. Cache hits and singleflight followers (callers whose
// answer is produced by a concurrent leader) never touch the gate, so
// a bound implemented with it tracks CPU-bound computations rather
// than parked requests. acquire returning false aborts the query with
// ErrGateRejected — and only the caller's own acquire can reject it:
// a follower that inherits a leader's rejection through the flight
// silently retries until its own hook decides. Either hook may be
// nil: a nil acquire disables gating entirely, a nil release just
// skips the post-computation call.
//
// ctx bounds both waiting and computing: a caller parked behind a
// concurrent leader's computation unblocks when ctx ends and gets
// ctx's error, and a caller that is itself the leader has its
// evaluation deadline-checked per chain step (see CostDistributionCtx)
// — an expired budget stops the computation and fills no cache entry.
// A follower handed the LEADER's context error while its own ctx is
// still live retries with a new leader, so one short-budget caller
// never poisons a long-budget one. A nil ctx means
// context.Background, which disables every deadline check.
func (s *System) PathDistributionGated(ctx context.Context, p Path, depart float64, m Method,
	acquire func() bool, release func()) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if m == "" {
		// Normalize before keying: core defaults "" to OD, so both
		// spellings are one logical query and must share one cache
		// and flight entry.
		m = OD
	}
	// One epoch snapshot serves the whole query: however many retry
	// iterations the flight takes, the answer — and the cache entry it
	// fills — belongs to this epoch, even if a publish lands mid-query.
	ep := s.epoch.Load()
	if s.qcache.Load() == nil && acquire == nil {
		// Uncached, ungated: skip the closure machinery entirely (the
		// loop below would take this branch anyway).
		return s.compute(ctx, ep, p, depart, m)
	}
	gated := func() (*QueryResult, error) {
		if acquire != nil {
			if !acquire() {
				return nil, ErrGateRejected
			}
			if release != nil {
				defer release()
			}
		}
		return s.compute(ctx, ep, p, depart, m)
	}
	counted := false
	for {
		c := s.qcache.Load()
		if c == nil {
			// Uncached queries stay independent on purpose: each caller
			// owns its result and may post-process it freely.
			return gated()
		}
		key := s.queryKey(ep, p, depart, m)
		// One logical query counts one hit or miss, however many
		// retry iterations it takes: only the first lookup uses the
		// stat-counting Get.
		var res *QueryResult
		var ok bool
		if counted {
			res, ok = c.Peek(key)
		} else {
			res, ok = c.Get(key)
			counted = true
		}
		if ok {
			return res, nil
		}
		res, shared, err := s.flight.DoCtx(ctx, key, func() (*QueryResult, error) {
			// Re-check: a previous flight may have filled the cache
			// between this caller's miss and it becoming the leader.
			// Peek, not Get — the outer Get already counted this lookup.
			if res, ok := c.Peek(key); ok {
				return res, nil
			}
			res, err := gated()
			if err != nil {
				return nil, err
			}
			c.Put(key, res)
			return res, nil
		})
		if shared && errors.Is(err, ErrGateRejected) {
			// The rejection belongs to the leader (its acquire hook
			// refused — typically its client vanished while queued);
			// this caller's own gate was never consulted. Go again: a
			// surviving caller becomes the new leader, and its own
			// acquire decides.
			continue
		}
		if shared && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The LEADER's deadline or client died mid-computation; this
			// caller's budget is still live. Retry: a surviving caller
			// becomes the new leader and computes under its own ctx.
			continue
		}
		return res, err
	}
}

// compute runs one underlying estimation (the expensive step the
// cache and singleflight both exist to avoid repeating) against one
// epoch snapshot. The epoch's synopsis (offline, persisted) is
// consulted before its convolution-memo view (runtime, lazy); either
// resumes evaluation from the deepest known prefix of p, and the
// answer is byte-identical with both, either or neither enabled.
func (s *System) compute(ctx context.Context, ep *ModelEpoch, p Path, depart float64, m Method) (*QueryResult, error) {
	if s.computeProbe != nil {
		s.computeProbe()
	}
	// ctx bounds the evaluation itself (per-edge and per-factor
	// deadline checks in core), not just the wait: a query whose
	// budget expires mid-chain stops burning CPU and returns ctx's
	// error. Background contexts make every check a no-op.
	if ctx == context.Background() {
		ctx = nil
	}
	syn := ep.Synopsis()
	mm := ep.memo.Load()
	if syn != nil || mm != nil {
		return ep.Hybrid.CostDistributionWithCtx(ctx, syn, mm, p, depart, core.QueryOptions{Method: m})
	}
	return ep.Hybrid.CostDistributionCtx(ctx, p, depart, core.QueryOptions{Method: m})
}

// GroundTruth runs the accuracy-optimal baseline (Section 2.2) on the
// system's trajectory data; it fails when fewer than β trajectories
// qualify (the sparseness problem).
func (s *System) GroundTruth(p Path, depart float64) (*Histogram, int, error) {
	return core.GroundTruth(s.Data(), p, depart, s.Params)
}

// Route answers a probabilistic budget query: the path from src to dst
// maximizing P(travel time ≤ budget) when departing at depart. With a
// batch planner enabled (EnableBatchPlanner), each DFS frontier's
// sibling expansions evaluate as one implicit batch on the planner's
// worker pool; the answer is byte-identical either way.
func (s *System) Route(src, dst VertexID, depart, budget float64, m Method) (*RouteResult, error) {
	ep := s.epoch.Load()
	return ep.Router.BestPath(routing.Query{
		Source: src, Dest: dst, Depart: depart, Budget: budget,
	}, s.routeOptions(ep, m))
}

// routeOptions assembles the routing options shared by Route and
// TopKRoutes, propagating the batch planner's worker bound when one
// is enabled on the epoch.
func (s *System) routeOptions(ep *ModelEpoch, m Method) routing.Options {
	opt := routing.Options{Method: m, Incremental: true}
	if bp := ep.planner.Load(); bp != nil {
		opt.BatchWorkers = bp.Workers()
	}
	return opt
}

// DensePath is a query-path candidate backed by many trajectories.
type DensePath struct {
	Path     Path
	Interval int // α-interval index of the arrivals
	Count    int // trajectories traversing Path in Interval
}

// DensePaths scans the trajectory collection for paths of the given
// cardinality with at least minCount traversals within a single
// α-interval — the workload selector behind the paper's accuracy
// experiments (Figures 4, 13, 14).
func (s *System) DensePaths(cardinality, minCount int) []DensePath {
	type key struct {
		pk string
		iv int
	}
	counts := make(map[key]int)
	samples := make(map[key]Path)
	data := s.Data()
	for i := 0; i < data.Len(); i++ {
		m := data.Traj(i)
		if len(m.Path) < cardinality {
			continue
		}
		for pos := 0; pos+cardinality <= len(m.Path); pos++ {
			sub := m.Path[pos : pos+cardinality]
			iv := s.Params.IntervalOf(m.ArrivalAt(pos))
			k := key{pk: sub.Key(), iv: iv}
			counts[k]++
			if _, ok := samples[k]; !ok {
				samples[k] = sub.Clone()
			}
		}
	}
	var out []DensePath
	for k, c := range counts {
		if c >= minCount {
			out = append(out, DensePath{Path: samples[k], Interval: k.iv, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Path.Key() < out[j].Path.Key()
	})
	return out
}

// RandomQueryPath samples a simple path of exactly n edges by random
// walk from a random populated edge; used to generate long query
// workloads (Figures 15 and 16). rnd is any deterministic int source.
func (s *System) RandomQueryPath(n int, rnd func(int) int) (Path, error) {
	if s.Graph.NumEdges() == 0 {
		// Guard before calling rnd(0): rand.Intn-shaped sources panic
		// on a non-positive bound.
		return nil, fmt.Errorf("pathcost: graph has no edges, cannot sample a query path")
	}
	for attempt := 0; attempt < 200; attempt++ {
		start := EdgeID(rnd(s.Graph.NumEdges()))
		if p := s.Graph.RandomWalkPath(start, n, rnd); p != nil {
			return p, nil
		}
	}
	return nil, fmt.Errorf("pathcost: no %d-edge simple path found after 200 attempts", n)
}

// Stats returns the hybrid graph's build statistics (variable counts
// by rank, coverage, storage).
func (s *System) Stats() core.BuildStats { return s.Hybrid().Stats() }

// SaveModel writes the trained hybrid graph to w — including the
// attached synopsis, when one exists, in a versioned trailing section
// — and LoadSystem restores both against the same road network.
// Training is the expensive step (the paper reports minutes to 45
// minutes on its fleets), so real deployments train once and serve
// many queries.
func (s *System) SaveModel(w io.Writer) error {
	ep := s.epoch.Load()
	return ep.Hybrid.WriteModelSynopsis(w, ep.Synopsis())
}

// LoadSystem restores a saved model against the road network it was
// trained on; a synopsis section, when present, is loaded and
// attached (AttachSynopsis(nil) detaches it). data may be nil; it is
// only needed by GroundTruth and DensePaths.
func LoadSystem(g *Graph, data *Collection, r io.Reader) (*System, error) {
	h, syn, err := core.ReadHybridSynopsis(r, g)
	if err != nil {
		return nil, err
	}
	sys := newSystem(g, data, h, h.Params)
	if syn != nil {
		sys.AttachSynopsis(syn)
	}
	return sys, nil
}

// TopKRoutes answers the probabilistic top-k path query: the k best
// paths by probability of arriving within the budget.
func (s *System) TopKRoutes(src, dst VertexID, depart, budget float64, k int, m Method) ([]routing.TopKResult, error) {
	ep := s.epoch.Load()
	return ep.Router.TopKPaths(routing.Query{
		Source: src, Dest: dst, Depart: depart, Budget: budget,
	}, k, s.routeOptions(ep, m))
}

// ---------------------------------------------------------------------------
// Epoch lifecycle: staging, incremental publish, stats.

// SetDecayHalflife selects the incremental-maintenance mode for
// subsequent publishes. Zero (the default) is exact mode: each publish
// extends the trajectory collection and rebuilds exactly the touched
// variables from their full occurrence lists, so the published model
// is byte-identical to retraining from scratch on the concatenated
// data. A positive halflife switches to decay mode: at publish time
// every touched variable's old mass is scaled by 2^(-Δt/halflife)
// (Δt = time since the previous publish) before the new mass merges
// in, so stale observations fade exponentially; untouched variables
// keep their stored (normalized) distributions, which is exact because
// uniform decay cancels under normalization. Decay mode does not need
// the trajectory collection, so it also serves models loaded without
// data (LoadSystem with nil data). Safe to call concurrently.
func (s *System) SetDecayHalflife(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.decayBits.Store(math.Float64bits(d.Seconds()))
}

// DecayHalflife returns the configured decay halflife (zero = exact
// mode).
func (s *System) DecayHalflife() time.Duration {
	sec := math.Float64frombits(s.decayBits.Load())
	return time.Duration(sec * float64(time.Second))
}

// AttachWAL attaches an ingest write-ahead log and replays its pending
// records into the staged delta buffer — the crash-recovery path.
// Every subsequent StageTrajectories appends to the log before
// acknowledging, and PublishEpoch truncates it once a model checkpoint
// (SetWALCheckpoint) has persisted the published state. Replayed
// trajectories are re-validated against the graph; the next publish
// folds them in exactly as the pre-crash publish would have — exact
// mode builds are batching-invariant, so the recovered model is
// byte-identical to an uninterrupted run's.
//
// Attach before serving: the method itself takes the staging lock, but
// the replayed backlog should be in place before queries or ingest
// traffic arrive.
func (s *System) AttachWAL(l *wal.Log) (replayedBatches, replayedTrajs int) {
	pending := l.Pending()
	s.stageMu.Lock()
	s.wlog = l
	for _, rec := range pending {
		ok := make([]*Matched, 0, len(rec.Batch))
		for _, m := range rec.Batch {
			if m == nil || m.Validate(s.Graph) != nil ||
				(s.Params.Domain == DomainEmissions && m.Emissions == nil) {
				continue
			}
			ok = append(ok, m)
		}
		if len(ok) == 0 {
			continue
		}
		s.staged = append(s.staged, ok...)
		replayedBatches++
		replayedTrajs += len(ok)
		if rec.Seq > s.walHigh {
			s.walHigh = rec.Seq
		}
	}
	s.stageMu.Unlock()
	if replayedTrajs > 0 {
		s.statMu.Lock()
		s.stagedTotal += uint64(replayedTrajs)
		s.statMu.Unlock()
	}
	return replayedBatches, replayedTrajs
}

// SetWALCheckpoint installs the model-persistence hook that gates WAL
// truncation: after a successful publish, fn must durably persist the
// newly served model (typically SaveModel to a temp file + rename);
// only when it returns nil does PublishEpoch truncate the log through
// the published sequence. With no hook (or a failing one) the log
// retains its records — recovery then replays more than strictly
// necessary, which is safe, rather than less, which never is.
func (s *System) SetWALCheckpoint(fn func() error) {
	s.stageMu.Lock()
	s.checkpointFn = fn
	s.stageMu.Unlock()
}

// WALStats reports the attached write-ahead log's state; ok is false
// when no WAL is attached. AppendErrors counts batches rejected
// because the log could not append them.
func (s *System) WALStats() (st wal.Stats, appendErrors uint64, ok bool) {
	s.stageMu.Lock()
	l, errs := s.wlog, s.walErrors
	s.stageMu.Unlock()
	if l == nil {
		return wal.Stats{}, 0, false
	}
	return l.Stats(), errs, true
}

// StageTrajectories validates a batch of map-matched trajectories
// against the system's graph and appends the valid ones to the staged
// delta buffer, to be folded into the model by the next PublishEpoch.
// Invalid entries (nil, failing Matched.Validate, or missing emission
// costs when the model's domain is emissions) are counted in rejected
// and dropped; one bad trajectory never poisons the batch. Staging
// never touches the served model. Safe for concurrent use.
//
// With a WAL attached (AttachWAL) the validated batch is appended to
// the log before it is counted as accepted — durability before
// acknowledgement. A WAL write failure rejects the whole batch (and
// counts in WALStats.AppendErrors): acking data the log cannot hold
// would turn a later crash into silent loss.
func (s *System) StageTrajectories(batch []*Matched) (accepted, rejected int) {
	ok := make([]*Matched, 0, len(batch))
	for _, m := range batch {
		if m == nil || m.Validate(s.Graph) != nil ||
			(s.Params.Domain == DomainEmissions && m.Emissions == nil) {
			rejected++
			continue
		}
		ok = append(ok, m)
	}
	if len(ok) == 0 {
		return 0, rejected
	}
	s.stageMu.Lock()
	if s.wlog != nil {
		seq, err := s.wlog.Append(ok)
		if err != nil {
			s.walErrors++
			s.stageMu.Unlock()
			return 0, rejected + len(ok)
		}
		s.walHigh = seq
	}
	s.staged = append(s.staged, ok...)
	s.stageMu.Unlock()
	s.statMu.Lock()
	s.stagedTotal += uint64(len(ok))
	s.statMu.Unlock()
	return len(ok), rejected
}

// StagedCount reports how many staged trajectories await the next
// publish.
func (s *System) StagedCount() int {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	return len(s.staged)
}

// ApplyDeltas stages a batch and immediately publishes a new epoch —
// the one-call form of StageTrajectories + PublishEpoch for embedded
// use and tests. Anything already staged publishes along with it.
func (s *System) ApplyDeltas(batch []*Matched) (EpochStats, error) {
	s.StageTrajectories(batch)
	return s.PublishEpoch()
}

// PublishEpoch folds every staged trajectory into a new model epoch
// and atomically swaps it in. The build is copy-on-write: only
// variables whose (sub-path, interval) was touched by the staged
// batch are rebuilt (exact mode) or decayed-and-merged (decay mode);
// everything else is shared with the previous epoch by pointer.
// In-flight queries are never blocked — they finish on the epoch they
// snapshotted, and the epoch-prefixed cache keys, memo views and the
// rebuilt synopsis/planner guarantee no derived state computed against
// the old model ever answers a query on the new one.
//
// With nothing staged, PublishEpoch is a no-op returning current
// stats. On a build error the staged batch is restored (ahead of
// anything staged meanwhile) so the data is not lost, and the served
// epoch is unchanged. Publishers are serialized; queries and staging
// proceed concurrently with a publish.
func (s *System) PublishEpoch() (EpochStats, error) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()

	s.stageMu.Lock()
	staged := s.staged
	s.staged = nil
	// The WAL high-water mark is captured under the same lock that
	// drained the buffer: it covers exactly the drained records (later
	// stagings append beyond it and stay pending).
	wlog, walHigh, checkpoint := s.wlog, s.walHigh, s.checkpointFn
	s.stageMu.Unlock()

	ep := s.epoch.Load()
	if len(staged) == 0 {
		return s.epochStats(ep), nil
	}

	halflife := s.DecayHalflife()
	factor := 1.0
	if halflife > 0 {
		dt := time.Since(s.lastPublish)
		if dt < 0 {
			dt = 0
		}
		factor = math.Exp2(-dt.Seconds() / halflife.Seconds())
		if factor < 1e-12 {
			// Exp2 underflows to 0 for enormous gaps; the decay builder
			// requires factor > 0, and 1e-12 already erases the past.
			factor = 1e-12
		}
	}

	t0 := time.Now()
	var (
		nh    *core.HybridGraph
		nd    *Collection
		delta core.EpochDelta
		err   error
	)
	if s.buildProbe != nil {
		err = s.buildProbe()
	}
	if err == nil {
		if halflife <= 0 {
			nh, nd, delta, err = ep.Hybrid.ApplyBatchExact(ep.Data, staged)
		} else {
			nh, delta, err = ep.Hybrid.ApplyBatchDecay(staged, factor)
			nd = ep.Data
		}
	}
	if err != nil {
		// Restore ahead of anything staged meanwhile: the drained batch
		// is older, and a later successful publish must fold batches in
		// their staging order (exact-mode determinism depends on it).
		s.stageMu.Lock()
		s.staged = append(staged, s.staged...)
		s.stageMu.Unlock()
		return s.epochStats(ep), err
	}

	// Carry the synopsis forward: entries whose sub-path shares no edge
	// with the delta are still byte-exact and move by pointer; touched
	// ones rematerialize against the new model; unanswerable ones drop.
	var (
		syn      *core.SynopsisStore
		synStats core.SynopsisRebuildStats
	)
	if old := ep.Synopsis(); old != nil {
		syn, synStats, err = old.Rebuild(nh, func(p Path) bool {
			for _, e := range p {
				if delta.TouchedEdges[e] {
					return true
				}
			}
			return false
		})
		if err != nil {
			// Serving the new epoch without a synopsis beats refusing
			// the publish; the store can be rebuilt offline.
			syn = nil
			synStats = core.SynopsisRebuildStats{}
		}
	}

	seq := ep.Seq + 1
	router := routing.New(nh)
	var view *core.ConvMemo
	if base := s.convMemo.Load(); base != nil {
		view = base.ForEpoch(seq)
	}
	router.SetMemo(view)
	router.SetSynopsis(syn)
	nep := &ModelEpoch{Seq: seq, Hybrid: nh, Data: nd, Router: router}
	nep.synopsis.Store(syn)
	nep.memo.Store(view)
	if bp := ep.planner.Load(); bp != nil {
		nep.planner.Store(core.NewBatchPlanner(nh, bp.Workers()))
	}
	s.epoch.Store(nep)
	s.lastPublish = time.Now()

	// WAL truncation is gated on a successful model checkpoint: the
	// published epoch lives only in memory, so dropping its records
	// before some file holds their effect would leave a crash with
	// neither. No checkpointer (or a failed one) keeps the records;
	// recovery then replays them against the base model, which the
	// batching-invariant exact build folds to the same bytes.
	if wlog != nil && walHigh > 0 && checkpoint != nil {
		if cerr := checkpoint(); cerr == nil {
			_ = wlog.TruncateThrough(walHigh)
		}
	}

	s.statMu.Lock()
	s.publishes++
	s.lastDelta = delta
	s.lastBuild = time.Since(t0)
	s.lastFactor = factor
	s.lastSyn = synStats
	s.statMu.Unlock()
	return s.epochStats(nep), nil
}

// EpochStats reports the epoch lifecycle's state: the served epoch,
// staging backlog, and what the most recent publish did.
type EpochStats struct {
	// Seq is the served epoch's sequence number (1 = initial model).
	Seq uint64
	// Publishes counts successful epoch publishes.
	Publishes uint64
	// StagedPending is the staged-trajectory backlog awaiting publish;
	// StagedTotal counts every trajectory ever accepted for staging.
	StagedPending int
	StagedTotal   uint64
	// DecayHalflifeSec echoes the configured halflife (0 = exact mode).
	DecayHalflifeSec float64
	// LastTrajs .. LastNewVars describe the most recent publish's
	// delta: trajectories folded in, distinct (sub-path, interval)
	// variables touched, rebuilt and newly created.
	LastTrajs       int
	LastTouchedVars int
	LastRebuiltVars int
	LastNewVars     int
	// LastBuildMS is the most recent publish's model-build time;
	// LastDecayFactor the decay factor it applied (1 in exact mode).
	LastBuildMS     int64
	LastDecayFactor float64
	// SynopsisCarried/Rematerialized/Dropped describe how the last
	// publish carried the synopsis across the epoch boundary.
	SynopsisCarried        int
	SynopsisRematerialized int
	SynopsisDropped        int
}

// EpochStats snapshots the epoch lifecycle counters. It never waits
// behind an in-progress publish.
func (s *System) EpochStats() EpochStats { return s.epochStats(s.epoch.Load()) }

func (s *System) epochStats(ep *ModelEpoch) EpochStats {
	s.stageMu.Lock()
	pending := len(s.staged)
	s.stageMu.Unlock()
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return EpochStats{
		Seq:                    ep.Seq,
		Publishes:              s.publishes,
		StagedPending:          pending,
		StagedTotal:            s.stagedTotal,
		DecayHalflifeSec:       s.DecayHalflife().Seconds(),
		LastTrajs:              s.lastDelta.Trajs,
		LastTouchedVars:        s.lastDelta.TouchedPaths,
		LastRebuiltVars:        s.lastDelta.RebuiltVars,
		LastNewVars:            s.lastDelta.NewVars,
		LastBuildMS:            s.lastBuild.Milliseconds(),
		LastDecayFactor:        s.lastFactor,
		SynopsisCarried:        s.lastSyn.Carried,
		SynopsisRematerialized: s.lastSyn.Rematerialized,
		SynopsisDropped:        s.lastSyn.Dropped,
	}
}
