package pathcost

// Cold-start benchmarks for the offline sub-path synopsis: the
// acceptance comparison is a freshly booted server (cold ConvMemo,
// nothing warmed) against the same server with the model's persisted
// synopsis attached, replaying a prefix-heavy workload. Run with:
//
//	go test -bench 'PathDistributionCold|PathDistributionSynopsis' -benchmem .

import (
	"sync"
	"testing"
)

var (
	synBenchOnce     sync.Once
	synBenchSys      *System
	synBenchWorkload []WorkloadQuery
	synBenchErr      error
)

func synBenchSetup(b *testing.B) (*System, []WorkloadQuery) {
	b.Helper()
	synBenchOnce.Do(func() {
		params := DefaultParams()
		params.Beta = 20
		params.MaxRank = 4
		synBenchSys, synBenchErr = Synthesize(SynthesizeConfig{
			Preset: "test", Trips: 6000, Seed: 23, Params: params,
		})
		if synBenchErr != nil {
			return
		}
		synBenchWorkload, synBenchErr = synBenchSys.SyntheticWorkload(512, 10, 23, []float64{8 * 3600})
	})
	if synBenchErr != nil {
		b.Fatal(synBenchErr)
	}
	return synBenchSys, synBenchWorkload
}

// replay answers the whole workload once, sequentially (the cold-start
// cost being measured is convolution work, not scheduling).
func replay(b *testing.B, sys *System, workload []WorkloadQuery) {
	b.Helper()
	for _, q := range workload {
		if _, err := sys.PathDistribution(q.Path, q.Depart, OD); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathDistributionColdMemo is the baseline: every iteration
// simulates a cold server start — fresh ConvMemo, no synopsis — and
// replays the prefix-heavy workload, paying full convolution cost for
// every distinct prefix.
func BenchmarkPathDistributionColdMemo(b *testing.B) {
	sys, workload := synBenchSetup(b)
	sys.AttachSynopsis(nil)
	defer sys.EnableConvMemo(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys.EnableConvMemo(1 << 16) // fresh, empty memo = cold start
		b.StartTimer()
		replay(b, sys, workload)
	}
}

// BenchmarkPathDistributionSynopsis is the same cold start with the
// model's synopsis attached: the workload's sub-paths were selected
// and materialized offline, so the replay runs on pre-computed states
// from the first query.
func BenchmarkPathDistributionSynopsis(b *testing.B) {
	sys, workload := synBenchSetup(b)
	syn, err := sys.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.AttachSynopsis(nil)
	defer sys.EnableConvMemo(0)
	b.Logf("synopsis: %d entries, %d bytes", syn.Len(), syn.Bytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys.EnableConvMemo(1 << 16) // memo cold; only the synopsis is warm
		b.StartTimer()
		replay(b, sys, workload)
	}
}
