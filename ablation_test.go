package pathcost

// Ablation benchmarks for the implementation's design choices:
//
//   - the accumulated-cost bucket cap in the Eq. 2 chain evaluator
//     (accuracy/speed trade-off of MaxAccBuckets);
//   - Auto bucket selection vs fixed Sta-b during training;
//   - incremental routing states vs per-prefix recomputation;
//   - parallel vs serial weight instantiation.
//
// Run with: go test -bench=Ablation -benchmem

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
)

// BenchmarkAblationAccBuckets sweeps the chain evaluator's
// accumulator cap: small caps are faster but coarser.
func BenchmarkAblationAccBuckets(b *testing.B) {
	e := benchEnvironment(b)
	rnd := rand.New(rand.NewSource(10))
	var paths []graph.Path
	for len(paths) < 8 {
		start := graph.EdgeID(rnd.Intn(e.G.NumEdges()))
		if p := e.G.RandomWalkPath(start, 25, rnd.Intn); p != nil {
			paths = append(paths, p)
		}
	}
	for _, cap := range []int{8, 24, 48, 96, 0} {
		params := e.Params()
		params.MaxAccBuckets = cap
		h, err := e.Hybrid(params, 1)
		if err != nil {
			b.Fatal(err)
		}
		name := "cap=unlimited"
		if cap > 0 {
			name = "cap=" + itoa(cap)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := paths[i%len(paths)]
				if _, err := h.CostDistribution(p, 8*3600, core.QueryOptions{Method: core.MethodOD}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAutoVsStatic compares training with Auto bucket
// selection against fixed Sta-b bucket counts.
func BenchmarkAblationAutoVsStatic(b *testing.B) {
	e := benchEnvironment(b)
	for _, static := range []int{0, 3, 4} {
		params := e.Params()
		params.StaticBuckets = static
		name := "auto"
		if static > 0 {
			name = "sta-" + itoa(static)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(e.G, e.Data(), params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIncrementalRouting compares DFS routing with the
// incremental "path + another edge" states against per-prefix
// recomputation (the Σ RT(P, method) model).
func BenchmarkAblationIncrementalRouting(b *testing.B) {
	e, h := benchHybrid(b)
	r := routing.New(h)
	src := graph.VertexID(20)
	dists := e.G.ShortestDistances(src, graph.FreeFlowWeight)
	var dst graph.VertexID = -1
	best := 0.0
	for v, d := range dists {
		if graph.VertexID(v) != src && d > best && d < 300 {
			best = d
			dst = graph.VertexID(v)
		}
	}
	if dst < 0 {
		b.Skip("no destination")
	}
	q := routing.Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: best * 2}
	for _, inc := range []bool{true, false} {
		name := "incremental"
		if !inc {
			name = "recompute"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := r.BestPath(q, routing.Options{Incremental: inc, MaxExpansions: 1500})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelBuild compares serial and parallel weight
// instantiation.
func BenchmarkAblationParallelBuild(b *testing.B) {
	e := benchEnvironment(b)
	for _, workers := range []int{1, 4, 8} {
		params := e.Params()
		params.Workers = workers
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(e.G, e.Data(), params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
