package pathcost_test

import (
	"fmt"
	"math"

	pathcost "repro"
)

// Example demonstrates the minimal end-to-end flow: synthesize a
// city + fleet, train the hybrid graph, query a path's travel-time
// distribution.
func Example() {
	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
		Preset: "test",
		Trips:  4000,
		Seed:   3,
		Params: tunedParams(),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	dense := sys.DensePaths(4, 20)
	if len(dense) == 0 {
		fmt.Println("no dense paths")
		return
	}
	lo, _ := sys.Params.IntervalBounds(dense[0].Interval)
	res, err := sys.PathDistribution(dense[0].Path, lo+60, pathcost.OD)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	total := res.Dist.ProbWithin(1e12)
	fmt.Println("is a probability distribution:", math.Abs(total-1) < 1e-9)
	fmt.Println("has positive mean:", res.Dist.Mean() > 0)
	// Output:
	// is a probability distribution: true
	// has positive mean: true
}

// ExampleSystem_GroundTruth shows the accuracy-optimal baseline and
// how it fails under sparseness (Section 2.2 of the paper).
func ExampleSystem_GroundTruth() {
	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
		Preset: "test", Trips: 4000, Seed: 3, Params: tunedParams(),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	dense := sys.DensePaths(3, 25)
	if len(dense) == 0 {
		fmt.Println("no dense paths")
		return
	}
	lo, _ := sys.Params.IntervalBounds(dense[0].Interval)
	_, n, err := sys.GroundTruth(dense[0].Path, lo+60)
	fmt.Println("dense path has ground truth:", err == nil && n >= sys.Params.Beta)
	// A path at 3 AM has no qualified trajectories: sparseness.
	_, _, err = sys.GroundTruth(dense[0].Path, 3*3600)
	fmt.Println("sparse departure fails:", err != nil)
	// Output:
	// dense path has ground truth: true
	// sparse departure fails: true
}

func tunedParams() pathcost.Params {
	p := pathcost.DefaultParams()
	p.Beta = 20
	p.MaxRank = 4
	return p
}
