package pathcost

// Benchmarks for the incremental sub-path convolution engine: routing
// and prefix-heavy distribution workloads with the memo off vs on.
// Run with:
//
//	go test -bench 'Memo' -benchmem .

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
)

var (
	memoBenchOnce sync.Once
	memoBenchSys  *System
	memoBenchErr  error
)

func memoBenchSystem(b *testing.B) *System {
	b.Helper()
	memoBenchOnce.Do(func() {
		params := DefaultParams()
		params.Beta = 20
		params.MaxRank = 4
		memoBenchSys, memoBenchErr = Synthesize(SynthesizeConfig{
			Preset: "test", Trips: 6000, Seed: 9, Params: params,
		})
	})
	if memoBenchErr != nil {
		b.Fatal(memoBenchErr)
	}
	return memoBenchSys
}

func memoBenchOD(b *testing.B, sys *System) (VertexID, VertexID, float64) {
	b.Helper()
	src := VertexID(sys.Graph.NumVertices() / 3)
	dists := sys.Graph.ShortestDistances(src, graph.FreeFlowWeight)
	var dst VertexID = -1
	best := 0.0
	for v, d := range dists {
		if VertexID(v) != src && d > best && d < 500 {
			best = d
			dst = VertexID(v)
		}
	}
	if dst < 0 {
		b.Skip("no reachable routing destination")
	}
	return src, dst, best * 2
}

// BenchmarkBestPathMemo measures the repeated-query routing hot path:
// with the memo on, every DFS expansion after the first query is a
// prefix lookup instead of a convolution.
func BenchmarkBestPathMemo(b *testing.B) {
	sys := memoBenchSystem(b)
	src, dst, budget := memoBenchOD(b, sys)
	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Route(src, dst, 8*3600, budget, OD); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { sys.EnableConvMemo(0); run(b) })
	b.Run("on", func(b *testing.B) { sys.EnableConvMemo(1 << 16); run(b) })
}

// BenchmarkTopKPathsMemo is the same comparison for top-k queries,
// whose larger explored sets share even more prefixes.
func BenchmarkTopKPathsMemo(b *testing.B) {
	sys := memoBenchSystem(b)
	src, dst, budget := memoBenchOD(b, sys)
	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.TopKRoutes(src, dst, 8*3600, budget, 3, OD); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { sys.EnableConvMemo(0); run(b) })
	b.Run("on", func(b *testing.B) { sys.EnableConvMemo(1 << 16); run(b) })
}

// BenchmarkPathDistributionMemo measures a prefix-heavy distribution
// workload (every prefix of long paths — the /v1/batch shape) with
// the query cache off, isolating the convolution memo's contribution.
func BenchmarkPathDistributionMemo(b *testing.B) {
	sys := memoBenchSystem(b)
	rnd := rand.New(rand.NewSource(4))
	var paths []Path
	for i := 0; i < 4; i++ {
		p, err := sys.RandomQueryPath(12, rnd.Intn)
		if err != nil {
			b.Fatal(err)
		}
		for n := 2; n <= len(p); n += 2 {
			paths = append(paths, p[:n])
		}
	}
	sys.EnableQueryCache(0)
	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := paths[i%len(paths)]
			if _, err := sys.PathDistribution(p, 8*3600, OD); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { sys.EnableConvMemo(0); run(b) })
	b.Run("on", func(b *testing.B) { sys.EnableConvMemo(1 << 16); run(b) })
}
