package pathcost

import (
	"fmt"

	"repro/internal/gps"
	"repro/internal/mapmatch"
)

// Trajectory is a raw GPS trace (a time-ordered list of fixes) as it
// arrives from vehicles, before map matching.
type Trajectory = gps.Trajectory

// Record is one GPS fix.
type Record = gps.Record

// MatcherConfig tunes the HMM map matcher; the zero value uses the
// Newson–Krumm-style defaults.
type MatcherConfig = mapmatch.Config

// MatchStats summarizes a map-matching run.
type MatchStats struct {
	Matched int // trajectories successfully matched
	Failed  int // trajectories with no consistent road alignment
	Records int64
}

// MatchTrajectories runs the full ingestion pipeline of Section 2.1:
// every raw GPS trace is aligned with a road-network path by the HMM
// map matcher and converted into the (path, departure, per-edge cost)
// observation the trainer consumes. Unmatchable traces are skipped and
// counted rather than failing the batch — real fleets always contain
// broken traces.
func MatchTrajectories(g *Graph, raw []*Trajectory, cfg MatcherConfig) (*Collection, MatchStats, error) {
	if len(raw) == 0 {
		return nil, MatchStats{}, fmt.Errorf("pathcost: no trajectories to match")
	}
	m := mapmatch.New(g, cfg)
	var matched []*Matched
	var st MatchStats
	for _, tr := range raw {
		st.Records += int64(len(tr.Records))
		timed, err := m.MatchToTimed(tr)
		if err != nil {
			st.Failed++
			continue
		}
		if err := timed.Validate(g); err != nil {
			st.Failed++
			continue
		}
		matched = append(matched, timed)
		st.Matched++
	}
	if len(matched) == 0 {
		return nil, st, fmt.Errorf("pathcost: no trajectory could be matched")
	}
	return gps.NewCollection(matched, st.Records), st, nil
}

// SystemFromGPS builds a System directly from raw GPS traces: map
// matching followed by hybrid-graph training. This is the full
// paper pipeline for real-world data.
func SystemFromGPS(g *Graph, raw []*Trajectory, mcfg MatcherConfig, params Params) (*System, MatchStats, error) {
	data, st, err := MatchTrajectories(g, raw, mcfg)
	if err != nil {
		return nil, st, err
	}
	sys, err := NewSystem(g, data, params)
	return sys, st, err
}
