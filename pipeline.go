package pathcost

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/gps"
	"repro/internal/mapmatch"
)

// Trajectory is a raw GPS trace (a time-ordered list of fixes) as it
// arrives from vehicles, before map matching.
type Trajectory = gps.Trajectory

// Record is one GPS fix.
type Record = gps.Record

// MatcherConfig tunes the HMM map matcher; the zero value uses the
// Newson–Krumm-style defaults. Set Workers > 1 to shard batch
// ingestion across a goroutine pool.
type MatcherConfig = mapmatch.Config

// MatchStats summarizes a map-matching run.
type MatchStats struct {
	Matched int // trajectories successfully matched
	Failed  int // trajectories with no consistent road alignment
	Records int64
}

// MatchTrajectories runs the full ingestion pipeline of Section 2.1:
// every raw GPS trace is aligned with a road-network path by the HMM
// map matcher and converted into the (path, departure, per-edge cost)
// observation the trainer consumes. Unmatchable traces are skipped and
// counted rather than failing the batch — real fleets always contain
// broken traces.
//
// With cfg.Workers > 1 the batch is sharded across that many
// goroutines, each with its own Matcher (the matchers share nothing
// mutable, so workers never contend). Trajectories are matched
// independently, and results are merged back in input order, so the
// output is identical to a sequential run — parallelism only changes
// wall-clock time.
func MatchTrajectories(g *Graph, raw []*Trajectory, cfg MatcherConfig) (*Collection, MatchStats, error) {
	if len(raw) == 0 {
		return nil, MatchStats{}, fmt.Errorf("pathcost: no trajectories to match")
	}
	results := make([]*Matched, len(raw))
	workers := cfg.Workers
	if workers > len(raw) {
		workers = len(raw)
	}
	if workers <= 1 {
		m := mapmatch.New(g, cfg)
		for i := range raw {
			results[i] = matchOne(m, g, raw[i])
		}
	} else {
		// Workers pull trajectory indexes from a shared counter (not
		// contiguous chunks), so one pocket of hard-to-match traces
		// cannot idle the rest of the pool. Each worker builds its own
		// Matcher: the O(E) index duplication is deliberate isolation —
		// it keeps workers share-nothing (future matcher-side caching
		// cannot introduce contention) and is amortized over a batch
		// that costs orders of magnitude more than index construction.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m := mapmatch.New(g, cfg)
				for {
					i := int(next.Add(1) - 1)
					if i >= len(raw) {
						return
					}
					results[i] = matchOne(m, g, raw[i])
				}
			}()
		}
		wg.Wait()
	}
	var matched []*Matched
	var st MatchStats
	for i, tr := range raw {
		st.Records += int64(len(tr.Records))
		if results[i] == nil {
			st.Failed++
			continue
		}
		matched = append(matched, results[i])
		st.Matched++
	}
	if len(matched) == 0 {
		return nil, st, fmt.Errorf("pathcost: no trajectory could be matched")
	}
	return gps.NewCollection(matched, st.Records), st, nil
}

// matchOne matches a single trajectory, returning nil when it cannot
// be aligned with the network.
func matchOne(m *mapmatch.Matcher, g *Graph, tr *Trajectory) *Matched {
	timed, err := m.MatchToTimed(tr)
	if err != nil {
		return nil
	}
	if err := timed.Validate(g); err != nil {
		return nil
	}
	return timed
}

// SystemFromGPS builds a System directly from raw GPS traces: map
// matching followed by hybrid-graph training. This is the full
// paper pipeline for real-world data. mcfg.Workers and params.Workers
// control ingestion and training parallelism independently.
func SystemFromGPS(g *Graph, raw []*Trajectory, mcfg MatcherConfig, params Params) (*System, MatchStats, error) {
	data, st, err := MatchTrajectories(g, raw, mcfg)
	if err != nil {
		return nil, st, err
	}
	sys, err := NewSystem(g, data, params)
	return sys, st, err
}
