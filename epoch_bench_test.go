package pathcost

// Epoch-lifecycle acceptance benchmarks: how fast staged trajectory
// deltas fold into new epochs (BenchmarkIngestThroughput, reported as
// deltas/sec on top of the standard metrics) and what a query pays
// while a publisher is continuously rebuilding epochs underneath it
// (BenchmarkQueryDuringIngest versus the quiet-system baseline
// BenchmarkPathDistribution). Run with:
//
//	go test -bench 'BenchmarkIngestThroughput|BenchmarkQueryDuringIngest' -benchmem .

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gps"
	"repro/internal/wal"
)

var (
	epochBenchOnce sync.Once
	epochBenchSys  *System
	epochBenchHeld []*Matched
	epochBenchErr  error
)

// epochBenchSetup trains a base system on the front of a synthesized
// workload and keeps the tail as the stream of incoming deltas. The
// held-out pool is large enough that a benchmark run cycles through
// it rather than folding the same trajectory twice per epoch.
func epochBenchSetup(b *testing.B) (*System, []*Matched) {
	b.Helper()
	epochBenchOnce.Do(func() {
		params := DefaultParams()
		params.Beta = 20
		params.MaxRank = 4
		full, err := Synthesize(SynthesizeConfig{
			Preset: "test", Trips: 4000, Seed: 17, Params: params,
		})
		if err != nil {
			epochBenchErr = err
			return
		}
		data := full.Data()
		keep := data.Len() * 3 / 4
		var base, held []*Matched
		for i := 0; i < data.Len(); i++ {
			if i < keep {
				base = append(base, data.Traj(i))
			} else {
				held = append(held, data.Traj(i))
			}
		}
		epochBenchSys, epochBenchErr = NewSystem(full.Graph, gps.NewCollection(base, 0), params)
		epochBenchHeld = held
	})
	if epochBenchErr != nil {
		b.Fatal(epochBenchErr)
	}
	return epochBenchSys, epochBenchHeld
}

// BenchmarkIngestThroughput measures the full stage-and-publish cycle:
// each iteration stages a 25-trajectory batch and publishes the epoch
// that folds it in (copy-on-write rebuild of the touched variables,
// synopsis carry-over, router/planner rebind, atomic swap). The extra
// deltas/sec metric is the sustained fold rate a daemon can absorb.
func BenchmarkIngestThroughput(b *testing.B) {
	sys, held := epochBenchSetup(b)
	const batch = 25
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * batch) % len(held)
		hi := min(lo+batch, len(held))
		if _, err := sys.ApplyDeltas(held[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "deltas/sec")
}

// BenchmarkIngestWithWAL is BenchmarkIngestThroughput with a write-
// ahead log attached: each iteration stages a 25-trajectory batch
// (appending it to the WAL before the ack) and publishes the epoch
// that folds it in. The acceptance bar is that durability costs less
// than 2x the in-memory cycle — compare the deltas/sec metric against
// BenchmarkIngestThroughput in the same run.
func BenchmarkIngestWithWAL(b *testing.B) {
	sys, held := epochBenchSetup(b)
	l, err := wal.Open(b.TempDir(), wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sys.AttachWAL(l)
	defer func() {
		// Detach so later benchmarks sharing the system stay in-memory.
		sys.stageMu.Lock()
		sys.wlog = nil
		sys.walHigh = 0
		sys.stageMu.Unlock()
		l.Close()
	}()
	const batch = 25
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * batch) % len(held)
		hi := min(lo+batch, len(held))
		if acc, rej := sys.StageTrajectories(held[lo:hi]); acc != hi-lo || rej != 0 {
			b.Fatalf("staged %d/%d, rejected %d", acc, hi-lo, rej)
		}
		if _, err := sys.PublishEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "deltas/sec")
}

// BenchmarkQueryDuringIngest measures per-query latency while a
// background publisher continuously folds 25-trajectory batches into
// new epochs. Each measured op snapshots whatever epoch is current —
// the acceptance claim is that publishes never stall the read path,
// so this should track BenchmarkPathDistribution, not fall off a
// cliff.
func BenchmarkQueryDuringIngest(b *testing.B) {
	sys, held := epochBenchSetup(b)
	sys.EnableQueryCache(512)
	sys.EnableConvMemo(2048)
	dense := sys.DensePaths(3, 10)
	if len(dense) == 0 {
		b.Fatal("no dense paths in workload")
	}
	paths := dense[:min(8, len(dense))]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		const batch = 25
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			lo := (i * batch) % len(held)
			hi := min(lo+batch, len(held))
			if _, err := sys.ApplyDeltas(held[lo:hi]); err != nil {
				return
			}
		}
	}()

	rnd := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp := paths[rnd.Intn(len(paths))]
		lo, _ := sys.Params.IntervalBounds(dp.Interval)
		if _, err := sys.PathDistribution(dp.Path, lo+1, OD); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
