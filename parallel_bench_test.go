package pathcost

// Benchmarks for the concurrent ingestion-and-estimation engine: map
// matching scaling with worker count, hybrid-graph training scaling,
// and cached vs uncached query throughput. Run with
//
//	go test -bench 'MatchTrajectories|BuildWorkers|PathDistribution' -benchmem .

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

var (
	ingestOnce sync.Once
	ingestG    *Graph
	ingestRaw  []*Trajectory
)

func ingestFixture(b *testing.B) (*Graph, []*Trajectory) {
	b.Helper()
	ingestOnce.Do(func() {
		ingestG, ingestRaw = rawFixture(5, 1500)
	})
	return ingestG, ingestRaw
}

// benchWorkerCounts returns the worker counts worth comparing on this
// machine: sequential and NumCPU (plus a fixed pool size on single-core
// machines, so the pooled code path is still benchmarked).
func benchWorkerCounts() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1, 4}
}

// BenchmarkMatchTrajectories measures ingestion throughput at 1 worker
// and at NumCPU workers; the ratio is the multi-core speedup claimed
// by the engine.
func BenchmarkMatchTrajectories(b *testing.B) {
	g, raw := ingestFixture(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportMetric(float64(len(raw)), "trajs/op")
			for i := 0; i < b.N; i++ {
				if _, _, err := MatchTrajectories(g, raw, MatcherConfig{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildWorkers measures hybrid-graph training throughput at 1
// worker and at NumCPU workers over the same matched collection.
func BenchmarkBuildWorkers(b *testing.B) {
	g, raw := ingestFixture(b)
	data, _, err := MatchTrajectories(g, raw, MatcherConfig{Workers: runtime.NumCPU()})
	if err != nil {
		b.Fatal(err)
	}
	params := DefaultParams()
	params.Beta = 5
	params.MaxRank = 3
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := params
			p.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := NewSystem(g, data, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPathDistribution measures query throughput over a skewed
// workload of dense paths, with and without the query cache.
func BenchmarkPathDistribution(b *testing.B) {
	sys, err := Synthesize(SynthesizeConfig{Preset: "test", Trips: 6000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	dense := sys.DensePaths(3, 10)
	if len(dense) == 0 {
		b.Skip("no dense paths")
	}
	if len(dense) > 32 {
		dense = dense[:32]
	}
	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dp := dense[i%len(dense)]
			lo, _ := sys.Params.IntervalBounds(dp.Interval)
			if _, err := sys.PathDistribution(dp.Path, lo+60, OD); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) {
		sys.EnableQueryCache(0)
		run(b)
	})
	b.Run("cached", func(b *testing.B) {
		sys.EnableQueryCache(1024)
		run(b)
	})
}
